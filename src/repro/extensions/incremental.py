"""Incremental Floyd-Warshall (the paper's second future-work item).

Maintains an APSP solution under edge updates:

* weight *decreases* and edge insertions are absorbed in O(n²) per
  update: a cheaper edge (u, v, c) can only create paths through it,
  so ``dist' = dist ⊕ dist[:, u] ⊗ (c ⊗ dist[v, :])`` - one rank-1
  (min,+) outer product;
* weight *increases* and deletions may invalidate arbitrarily many
  paths; they are detected and answered with a (blocked) recompute.

The class keeps counters so callers can see how many updates took the
fast path - the economics that make incremental APSP attractive for
the paper's knowledge-graph use case.  Pass an
:class:`~repro.obs.metrics.MetricsRegistry` as ``metrics=`` to surface
them as ``serve.incremental.*`` counters, the same family the serving
layer's :class:`~repro.serve.incremental.ArtifactPatcher` emits.
"""

from __future__ import annotations

import numpy as np

from ..core.blocked import blocked_fw
from ..errors import NegativeCycleError
from ..semiring.minplus import INF

__all__ = ["IncrementalApsp"]


class IncrementalApsp:
    """An APSP solution that tracks a mutating graph.

    Parameters
    ----------
    weights:
        Square weight matrix.  Floating dtypes are preserved
        (``float32`` stays ``float32``); everything else is promoted
        to ``float64`` so +inf can mark absent edges.
    block_size:
        Tile size for the blocked recompute path.
    backend:
        SrGemm kernel backend (name or instance) for recomputes;
        ``None`` resolves through the :mod:`repro.semiring.backends`
        registry (``REPRO_SRGEMM_BACKEND`` et al.), exactly like
        :func:`repro.core.blocked_fw`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; updates
        increment ``serve.incremental.fast_updates`` /
        ``serve.incremental.recomputes``.
    """

    def __init__(self, weights: np.ndarray, block_size: int = 64, *,
                 backend=None, metrics=None):
        dtype = np.float64
        if isinstance(weights, np.ndarray) and np.issubdtype(weights.dtype, np.floating):
            dtype = weights.dtype
        w = np.array(weights, dtype=dtype, copy=True)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError(f"weights must be square, got {w.shape}")
        self.block_size = block_size
        self.backend = backend
        self.metrics = metrics
        self.weights = w
        self.dist = self._solve()
        self.fast_updates = 0
        self.recomputes = 0

    def _solve(self) -> np.ndarray:
        """A blocked recompute, cast back to the tracked dtype (the
        kernels work in the semiring's own dtype)."""
        dist = blocked_fw(self.weights, min(self.block_size, self.n),
                          backend=self.backend)
        return dist.astype(self.weights.dtype, copy=False)

    def _count(self, fast: bool) -> None:
        if fast:
            self.fast_updates += 1
        else:
            self.recomputes += 1
        if self.metrics is not None:
            name = "fast_updates" if fast else "recomputes"
            self.metrics.counter(f"serve.incremental.{name}").inc()

    @property
    def n(self) -> int:
        return self.weights.shape[0]

    def distance(self, src: int, dst: int) -> float:
        return float(self.dist[src, dst])

    def update_edge(self, u: int, v: int, weight: float) -> bool:
        """Set the weight of edge (u, v); returns True when the O(n²)
        fast path sufficed, False when a full recompute ran."""
        n = self.n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) outside vertex range [0, {n})")
        if u == v:
            if weight < 0:
                raise NegativeCycleError(u, weight)
            return True  # self-loops never shorten simple paths
        old = self.weights[u, v]
        self.weights[u, v] = weight
        if weight <= old:
            self._absorb_decrease(u, v, weight)
            self._count(fast=True)
            return True
        # Increase: only expensive if some shortest path used (u, v).
        if not self._edge_on_some_path(u, v, old):
            self._count(fast=True)
            return True
        self.dist = self._solve()
        self._count(fast=False)
        return False

    def insert_edge(self, u: int, v: int, weight: float) -> bool:
        """Add (or cheapen) an edge; always the fast path."""
        return self.update_edge(u, v, min(weight, float(self.weights[u, v])))

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete an edge (set to +inf); recomputes if it carried any
        shortest path."""
        return self.update_edge(u, v, INF)

    def batch_update(self, updates: list[tuple[int, int, float]]) -> int:
        """Apply many edge updates, coalescing recomputes.

        Decreases are absorbed immediately (each O(n²)); increases are
        staged, and at most *one* recompute runs at the end if any
        staged increase actually carried a shortest path.  Returns the
        number of updates that needed the recompute (0 when everything
        took the fast path).
        """
        expensive = 0
        staged_increase = False
        for u, v, weight in updates:
            n = self.n
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) outside vertex range [0, {n})")
            if u == v:
                if weight < 0:
                    raise NegativeCycleError(u, weight)
                continue
            old = float(self.weights[u, v])
            self.weights[u, v] = weight
            if weight <= old:
                self._absorb_decrease(u, v, weight)
                self._count(fast=True)
            else:
                if self._edge_on_some_path(u, v, old):
                    staged_increase = True
                    expensive += 1
                else:
                    self._count(fast=True)
        if staged_increase:
            self.dist = self._solve()
            self._count(fast=False)
        return expensive

    # -- internals -------------------------------------------------------
    def _absorb_decrease(self, u: int, v: int, c: float) -> None:
        """dist ← dist ⊕ (dist[:, u] + c + dist[v, :]) - every pair can
        route through the cheapened edge."""
        via = self.dist[:, u, None] + (c + self.dist[None, v, :])
        np.minimum(self.dist, via, out=self.dist)
        neg = np.diagonal(self.dist) < 0
        if neg.any():
            w = int(np.flatnonzero(neg)[0])
            raise NegativeCycleError(w, float(self.dist[w, w]))

    def _edge_on_some_path(self, u: int, v: int, old_weight: float) -> bool:
        """Did any pair's shortest distance equal a route through
        (u, v) at its old weight?"""
        if not np.isfinite(old_weight):
            return False
        via = self.dist[:, u, None] + (old_weight + self.dist[None, v, :])
        return bool(np.any(np.isclose(via, self.dist) & np.isfinite(self.dist)))
