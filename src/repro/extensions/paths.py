"""Shortest-path *generation* (the paper's first future-work item).

Two complementary tools:

* :func:`floyd_warshall_with_paths` - Floyd-Warshall that also carries
  a next-hop matrix, so paths come out of the sweep directly.
* :func:`next_hop_from_distances` / :func:`reconstruct_path` - rebuild
  next-hops from *any* valid distance matrix plus the weights.  This is
  the piece that composes with the distributed solver: run
  :func:`repro.apsp` for the distances, then generate paths locally
  without having had to carry parent matrices through the cluster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ValidationError

__all__ = [
    "floyd_warshall_with_paths",
    "next_hop_from_distances",
    "reconstruct_path",
    "path_length",
    "NO_HOP",
]

#: Sentinel for "no next hop" (unreachable or i == j).
NO_HOP = -1


def floyd_warshall_with_paths(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Floyd-Warshall carrying next-hop pointers.

    Returns ``(dist, nxt)`` where ``nxt[i, j]`` is the vertex following
    ``i`` on a shortest i->j path (or :data:`NO_HOP`).
    """
    n = weights.shape[0]
    dist = np.array(weights, dtype=np.float64, copy=True)
    nxt = np.full((n, n), NO_HOP, dtype=np.int64)
    finite = np.isfinite(dist)
    cols = np.arange(n, dtype=np.int64)
    for i in range(n):
        nxt[i, finite[i]] = cols[finite[i]]
        nxt[i, i] = NO_HOP
    for k in range(n):
        via = dist[:, k, None] + dist[None, k, :]
        better = via < dist
        dist = np.where(better, via, dist)
        # New best path i -> j goes i -> ... -> k -> ... -> j, so the
        # first hop is i's first hop toward k.
        nxt = np.where(better, nxt[:, k, None], nxt)
    return dist, nxt


def next_hop_from_distances(weights: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Recover a next-hop matrix from distances alone.

    ``j'`` is a valid first hop of a shortest i->j path iff
    ``w[i, j'] + dist[j', j] == dist[i, j]``; ties resolve to the
    smallest vertex id (deterministic).
    """
    n = weights.shape[0]
    nxt = np.full((n, n), NO_HOP, dtype=np.int64)
    for i in range(n):
        nbrs = np.flatnonzero(np.isfinite(weights[i]) & (np.arange(n) != i))
        if nbrs.size == 0:
            continue
        # candidate[h, j] = w[i, nbrs[h]] + dist[nbrs[h], j]
        candidate = weights[i, nbrs, None] + dist[nbrs, :]
        ok = np.isclose(candidate, dist[i][None, :]) & np.isfinite(dist[i])[None, :]
        any_ok = ok.any(axis=0)
        first = np.argmax(ok, axis=0)
        nxt[i, any_ok] = nbrs[first[any_ok]]
        nxt[i, i] = NO_HOP
    return nxt


def reconstruct_path(nxt: np.ndarray, src: int, dst: int) -> Optional[list[int]]:
    """Vertex sequence of a shortest src->dst path, or None if
    unreachable.  Guards against malformed next-hop matrices with a
    step bound."""
    if src == dst:
        return [src]
    if nxt[src, dst] == NO_HOP:
        return None
    path = [src]
    cur = src
    for _ in range(nxt.shape[0] + 1):
        cur = int(nxt[cur, dst])
        path.append(cur)
        if cur == dst:
            return path
        if cur == NO_HOP:
            return None
    raise ValidationError(f"next-hop matrix cycles while tracing {src}->{dst}")


def path_length(weights: np.ndarray, path: list[int]) -> float:
    """Sum of edge weights along a vertex sequence."""
    if len(path) < 2:
        return 0.0
    total = 0.0
    for u, v in zip(path, path[1:]):
        w = weights[u, v]
        if not np.isfinite(w):
            raise ValidationError(f"path uses missing edge ({u}, {v})")
        total += float(w)
    return total
