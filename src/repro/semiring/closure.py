"""Floyd-Warshall on a single block, and closure by repeated squaring.

Two routines implement the paper's *DiagUpdate*:

* :func:`fw_inplace` - the classic k-loop Floyd-Warshall (vectorized
  over i,j), used on the host and as correctness oracle.
* :func:`closure_by_squaring` - the paper's GPU formulation (its Eq. 4):
  the transitive closure expressed as a ⊕-sum of matrix powers,
  computed with ``ceil(log2 b)`` SrGemm squarings.  Asymptotically more
  flops, but expressed entirely in SrGemm calls - exactly the trade the
  paper makes to keep the DiagUpdate on the GPU.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import NegativeCycleError
from .kernels import srgemm, srgemm_accumulate, srgemm_diag
from .minplus import MIN_PLUS, Semiring

__all__ = [
    "fw_inplace",
    "floyd_warshall",
    "closure_by_squaring",
    "squaring_steps",
    "check_no_negative_cycle",
    "dc_floyd_warshall",
]


def fw_inplace(
    dist: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    check_negative_cycles: bool = False,
) -> np.ndarray:
    """Classic Floyd-Warshall, in place, vectorized over (i, j).

    ``dist`` must be square.  After the call, ``dist[i, j]`` is the
    ⊕-optimal path weight from i to j using any intermediate vertices
    of the block.  Returns ``dist`` for chaining.
    """
    n = dist.shape[0]
    if dist.ndim != 2 or dist.shape[1] != n:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    plus, times = semiring.plus, semiring.times
    for k in range(n):
        # dist ← dist ⊕ dist[:, k] ⊗ dist[k, :]  (rank-1 ⊗-outer product)
        plus(dist, times(dist[:, k, None], dist[None, k, :]), out=dist)
    if check_negative_cycles and semiring is MIN_PLUS:
        check_no_negative_cycle(dist)
    return dist


def floyd_warshall(
    weights: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    check_negative_cycles: bool = True,
) -> np.ndarray:
    """Out-of-place Floyd-Warshall on a weight matrix.

    The standard APSP entry point for a single in-memory matrix; the
    distributed drivers in :mod:`repro.core` compute the same result.
    """
    dist = np.array(weights, dtype=semiring.dtype, copy=True)
    return fw_inplace(dist, semiring=semiring, check_negative_cycles=check_negative_cycles)


def squaring_steps(n: int) -> int:
    """Number of squarings so that paths of any length ``< n`` (i.e. up
    to ``n - 1`` edges) are covered: ``ceil(log2(n-1))``, minimum 0."""
    if n <= 2:
        return 0 if n <= 1 else 1
    return math.ceil(math.log2(n - 1))


def closure_by_squaring(
    dist: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    steps: Optional[int] = None,
    backend=None,
) -> np.ndarray:
    """DiagUpdate via repeated squaring (paper Eq. 4).

    Computes ``⊕ Σ_{i=0..n} A^i = (I ⊕ A)^(2^steps)`` - the reflexive
    transitive closure - with ``steps`` SrGemm squarings (default
    :func:`squaring_steps`).  For a distance block with a zero diagonal
    this equals :func:`fw_inplace`'s result; the inclusion of ``I``
    makes the result correct even when the diagonal was not zero.

    Requires an idempotent ``⊕`` (min), otherwise squaring overcounts.
    """
    if not semiring.idempotent_plus:
        raise ValueError(f"closure requires an idempotent ⊕; {semiring.name} is not")
    n = dist.shape[0]
    if dist.ndim != 2 or dist.shape[1] != n:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    out = semiring.plus(dist, semiring.eye(n, dtype=dist.dtype))
    if steps is None:
        steps = squaring_steps(n)
    for _ in range(steps):
        # out ← out ⊕ out ⊗ out; with I ⊆ out the ⊕ with the old value
        # is implied, but accumulating keeps the kernel shape uniform.
        # The squaring chain is the DiagUpdate phase, so it goes through
        # the k-serial diag entry of the backend.
        out = srgemm_diag(out.copy(), out, out, semiring=semiring, backend=backend)
    return out


def dc_floyd_warshall(
    weights: np.ndarray,
    base_size: int = 64,
    semiring: Semiring = MIN_PLUS,
    check_negative_cycles: bool = True,
) -> np.ndarray:
    """Divide-and-conquer APSP (R-Kleene), the recursive formulation
    behind the communication-avoiding 2.5D algorithms the paper's
    related work discusses (Solomonik et al.).

    Recursively splits the matrix in two and expresses the closure as
    two half-size closures plus six semiring GEMMs::

        A11 ← closure(A11)
        A12 ← A11 ⊗ A12;          A21 ← A21 ⊗ A11
        A22 ← A22 ⊕ A21 ⊗ A12
        A22 ← closure(A22)
        A12 ← A12 ⊗ A22;          A21 ← A22 ⊗ A21
        A11 ← A11 ⊕ A12 ⊗ A21

    Same O(n³) work as Floyd-Warshall but GEMM-dominated at every
    level - which is why it maps well to fast-matmul hardware, and why
    the paper's blocked FW (its Algorithm 2) keeps the same kernel
    shape while exposing the pipeline structure the DC form lacks.
    """
    dist = np.array(weights, dtype=semiring.dtype, copy=True)
    n = dist.shape[0]
    if dist.ndim != 2 or dist.shape[1] != n:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    if base_size < 1:
        raise ValueError(f"base_size must be >= 1, got {base_size}")
    _dc_closure(dist, base_size, semiring)
    if check_negative_cycles and semiring is MIN_PLUS:
        check_no_negative_cycle(dist)
    return dist


def _dc_closure(a: np.ndarray, base: int, sr: Semiring) -> None:
    n = a.shape[0]
    if n <= base:
        fw_inplace(a, semiring=sr)
        return
    h = n // 2
    a11, a12 = a[:h, :h], a[:h, h:]
    a21, a22 = a[h:, :h], a[h:, h:]
    _dc_closure(a11, base, sr)
    a12[:] = sr.plus(a12, srgemm(a11, a12, semiring=sr))
    a21[:] = sr.plus(a21, srgemm(a21, a11, semiring=sr))
    srgemm_accumulate(a22, a21, a12, semiring=sr)
    _dc_closure(a22, base, sr)
    a12[:] = sr.plus(a12, srgemm(a12, a22, semiring=sr))
    a21[:] = sr.plus(a21, srgemm(a22, a21, semiring=sr))
    srgemm_accumulate(a11, a12, a21, semiring=sr)


def check_no_negative_cycle(dist: np.ndarray) -> None:
    """Raise :class:`NegativeCycleError` if any diagonal entry of a
    (min,+) closure is negative."""
    diag = np.diagonal(dist)
    bad = np.flatnonzero(diag < 0)
    if bad.size:
        v = int(bad[0])
        raise NegativeCycleError(v, float(diag[v]))
