"""Deliberately-naive reference implementations.

Pure triple loops, used only as oracles in the test suite (and to make
the vectorized kernels' semantics unambiguous).  Never call these on
anything large.
"""

from __future__ import annotations

import numpy as np

from .minplus import MIN_PLUS, Semiring

__all__ = ["naive_srgemm", "naive_floyd_warshall", "naive_blocked_fw"]


def naive_srgemm(a: np.ndarray, b: np.ndarray, semiring: Semiring = MIN_PLUS) -> np.ndarray:
    """Triple-loop ``A ⊗ B``; O(mnk) Python-level operations."""
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    out = semiring.zeros((m, n), dtype=np.result_type(a.dtype, b.dtype))
    for i in range(m):
        for j in range(n):
            acc = out[i, j]
            for kk in range(k):
                acc = semiring.plus(acc, semiring.times(a[i, kk], b[kk, j]))
            out[i, j] = acc
    return out


def naive_floyd_warshall(weights: np.ndarray, semiring: Semiring = MIN_PLUS) -> np.ndarray:
    """Triple-loop Floyd-Warshall, exactly the paper's Algorithm 1."""
    dist = np.array(weights, dtype=semiring.dtype, copy=True)
    n = dist.shape[0]
    for k in range(n):
        for i in range(n):
            for j in range(n):
                dist[i, j] = semiring.plus(
                    dist[i, j], semiring.times(dist[i, k], dist[k, j])
                )
    return dist


def naive_blocked_fw(
    weights: np.ndarray, block: int, semiring: Semiring = MIN_PLUS
) -> np.ndarray:
    """Blocked Floyd-Warshall (paper Algorithm 2) written block-by-block
    with the naive kernels; oracle for :mod:`repro.core.blocked`.

    ``block`` must divide the matrix order.
    """
    from .closure import fw_inplace  # vectorized FW is fine for the oracle's diag

    dist = np.array(weights, dtype=semiring.dtype, copy=True)
    n = dist.shape[0]
    if n % block:
        raise ValueError(f"block {block} does not divide n={n}")
    nb = n // block

    def blk(i: int, j: int) -> tuple[slice, slice]:
        return (
            slice(i * block, (i + 1) * block),
            slice(j * block, (j + 1) * block),
        )

    for k in range(nb):
        kk = blk(k, k)
        # Diagonal update
        fw_inplace(dist[kk], semiring=semiring)
        dkk = dist[kk]
        # Panel update (row then column)
        for j in range(nb):
            if j == k:
                continue
            r = blk(k, j)
            dist[r] = semiring.plus(dist[r], naive_srgemm(dkk, dist[r], semiring))
        for i in range(nb):
            if i == k:
                continue
            c = blk(i, k)
            dist[c] = semiring.plus(dist[c], naive_srgemm(dist[c], dkk, semiring))
        # Min-plus outer product
        for i in range(nb):
            for j in range(nb):
                if i == k or j == k:
                    continue
                t = blk(i, j)
                dist[t] = semiring.plus(
                    dist[t],
                    naive_srgemm(dist[blk(i, k)[0], blk(i, k)[1]], dist[blk(k, j)[0], blk(k, j)[1]], semiring),
                )
    return dist
