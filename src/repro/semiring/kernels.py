"""Semiring matrix-multiplication (SrGemm) kernels.

These are the compute kernels the paper offloads to the GPU via
cuASR/CUTLASS (its §2.6/§4.1).  Here they are vectorized NumPy, generic
over a :class:`~repro.semiring.minplus.Semiring`; the machine model in
:mod:`repro.machine` wraps them with simulated-time costing.

The triple loop ``C[i,j] = ⊕_k A[i,k] ⊗ B[k,j]`` is evaluated in
k-chunks so the broadcast temporary stays at ``m * k_chunk * n``
elements, the NumPy analogue of the shared-memory tiling a GPU GEMM
performs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .minplus import MIN_PLUS, Semiring

__all__ = [
    "srgemm",
    "srgemm_accumulate",
    "srgemm_flops",
    "eltwise_plus",
    "panel_row_update",
    "panel_col_update",
    "DEFAULT_K_CHUNK",
]

#: Default k-chunk: bounds the broadcast temporary at
#: ``m * DEFAULT_K_CHUNK * n`` elements (~8 MB for 128x128 blocks).
DEFAULT_K_CHUNK = 64


def srgemm_flops(m: int, n: int, k: int) -> int:
    """Flop count of one SrGemm, counting ``⊕`` and ``⊗`` as one flop
    each - the ``2mnk`` convention the paper uses throughout §4.5."""
    return 2 * m * n * k


def _validate_pair(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"srgemm operands must be 2-D, got {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")


def srgemm(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
) -> np.ndarray:
    """Return ``A ⊗ B`` (the min-plus product for the default semiring).

    Parameters
    ----------
    a, b:
        Operands of shapes ``(m, k)`` and ``(k, n)``.
    semiring:
        Algebra to evaluate over.
    k_chunk:
        Inner-dimension tile; ``None`` uses :data:`DEFAULT_K_CHUNK`.
    """
    _validate_pair(a, b)
    m, k = a.shape
    n = b.shape[1]
    out = semiring.zeros((m, n), dtype=np.result_type(a.dtype, b.dtype))
    if k == 0:
        return out
    return srgemm_accumulate(out, a, b, semiring=semiring, k_chunk=k_chunk)


def srgemm_accumulate(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
) -> np.ndarray:
    """In-place fused update ``C ← C ⊕ (A ⊗ B)``; returns ``c``.

    This is the exact shape of every update in blocked Floyd-Warshall
    (Alg. 2): the outer product, both panel updates and the look-ahead
    updates of the pipelined schedule are all ``C ⊕ A ⊗ B``.
    """
    _validate_pair(a, b)
    m, k = a.shape
    n = b.shape[1]
    if c.shape != (m, n):
        raise ValueError(f"accumulator shape {c.shape} does not match product shape {(m, n)}")
    if k == 0:
        return c
    step = k_chunk or DEFAULT_K_CHUNK
    plus, times = semiring.plus, semiring.times
    for k0 in range(0, k, step):
        k1 = min(k0 + step, k)
        # (m, kc, n) broadcast temporary == the "shared memory tile".
        partial = times(a[:, k0:k1, None], b[None, k0:k1, :])
        plus(c, semiring.plus_reduce(partial, axis=1), out=c)
    return c


def eltwise_plus(
    a: np.ndarray, b: np.ndarray, semiring: Semiring = MIN_PLUS, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Element-wise ``A ⊕ B`` (min for the tropical semiring)."""
    return semiring.plus(a, b, out=out)


def panel_row_update(
    panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
) -> np.ndarray:
    """Row-panel update ``A(k,:) ← A(k,:) ⊕ A(k,k) ⊗ A(k,:)`` in place.

    ``diag`` multiplies from the *left* (paper Alg. 2, PanelUpdate).
    """
    if diag.shape[0] != diag.shape[1] or diag.shape[1] != panel.shape[0]:
        raise ValueError(f"diag {diag.shape} incompatible with row panel {panel.shape}")
    return srgemm_accumulate(panel, diag, panel.copy(), semiring=semiring)


def panel_col_update(
    panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
) -> np.ndarray:
    """Column-panel update ``A(:,k) ← A(:,k) ⊕ A(:,k) ⊗ A(k,k)`` in place.

    ``diag`` multiplies from the *right* (paper Alg. 2, PanelUpdate).
    """
    if diag.shape[0] != diag.shape[1] or panel.shape[1] != diag.shape[0]:
        raise ValueError(f"diag {diag.shape} incompatible with column panel {panel.shape}")
    return srgemm_accumulate(panel, panel.copy(), diag, semiring=semiring)
