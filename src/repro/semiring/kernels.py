"""Semiring matrix-multiplication (SrGemm) kernels - backend facade.

These are the compute kernels the paper offloads to the GPU via
cuASR/CUTLASS (its §2.6/§4.1).  The actual implementations live in the
pluggable backend registry of :mod:`repro.semiring.backends`
(``reference`` broadcast oracle, cache-blocked ``tiled``, float32
``tiled-f32``, numba ``compiled``); the module-level functions here
keep the historical flat API and simply dispatch to the selected
backend, so existing call sites pick up a backend switch
(``backend=`` argument, :func:`repro.semiring.backends.set_default_backend`,
or the ``REPRO_SRGEMM_BACKEND`` environment variable) transparently.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .backends import KernelBackend, get_backend
from .minplus import MIN_PLUS, Semiring

__all__ = [
    "srgemm",
    "srgemm_accumulate",
    "srgemm_diag",
    "srgemm_panel",
    "srgemm_outer",
    "srgemm_flops",
    "eltwise_plus",
    "panel_row_update",
    "panel_col_update",
    "DEFAULT_K_CHUNK",
]

#: Historical default k-chunk, kept for backward compatibility.  The
#: chunk is now auto-tuned per call from a byte budget (see
#: :mod:`repro.semiring.backends.tuning`); 64 is what that tuner
#: yields for 128x128 float64 blocks under the default 8 MiB budget.
DEFAULT_K_CHUNK = 64

BackendArg = Union[str, KernelBackend, None]


def srgemm_flops(m: int, n: int, k: int) -> int:
    """Flop count of one SrGemm, counting ``⊕`` and ``⊗`` as one flop
    each - the ``2mnk`` convention the paper uses throughout §4.5."""
    return 2 * m * n * k


def srgemm(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
    backend: BackendArg = None,
) -> np.ndarray:
    """Return ``A ⊗ B`` (the min-plus product for the default semiring).

    Parameters
    ----------
    a, b:
        Operands of shapes ``(m, k)`` and ``(k, n)``.
    semiring:
        Algebra to evaluate over.
    k_chunk:
        Inner-dimension tile override; ``None`` lets the selected
        backend auto-tune it from the byte budget.
    backend:
        Kernel backend name or instance; ``None`` resolves the default.
    """
    return get_backend(backend).srgemm(a, b, semiring=semiring, k_chunk=k_chunk)


def srgemm_accumulate(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
    backend: BackendArg = None,
) -> np.ndarray:
    """In-place fused update ``C ← C ⊕ (A ⊗ B)``; returns ``c``.

    This is the exact shape of every update in blocked Floyd-Warshall
    (Alg. 2): the outer product, both panel updates and the look-ahead
    updates of the pipelined schedule are all ``C ⊕ A ⊗ B``.  ``a`` and
    ``b`` must not alias ``c`` (see the backend aliasing contract).
    """
    return get_backend(backend).srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)


def srgemm_diag(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
    backend: BackendArg = None,
) -> np.ndarray:
    """DiagUpdate-phase ``C ← C ⊕ A ⊗ B`` (pivot-block closure steps);
    backends may route this to a k-serial specialized kernel."""
    return get_backend(backend).srgemm_diag(c, a, b, semiring=semiring, k_chunk=k_chunk)


def srgemm_panel(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
    backend: BackendArg = None,
) -> np.ndarray:
    """PanelUpdate-phase ``C ← C ⊕ A ⊗ B`` (after the aliasing
    snapshot; see the backend contract)."""
    return get_backend(backend).srgemm_panel(c, a, b, semiring=semiring, k_chunk=k_chunk)


def srgemm_outer(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    k_chunk: Optional[int] = None,
    backend: BackendArg = None,
) -> np.ndarray:
    """MinPlus outer-product phase ``C ← C ⊕ A ⊗ B`` - the bulk of the
    flops; backends may route this to their widest-parallel kernel."""
    return get_backend(backend).srgemm_outer(c, a, b, semiring=semiring, k_chunk=k_chunk)


def eltwise_plus(
    a: np.ndarray, b: np.ndarray, semiring: Semiring = MIN_PLUS, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Element-wise ``A ⊕ B`` (min for the tropical semiring)."""
    return semiring.plus(a, b, out=out)


def panel_row_update(
    panel: np.ndarray,
    diag: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    backend: BackendArg = None,
) -> np.ndarray:
    """Row-panel update ``A(k,:) ← A(k,:) ⊕ A(k,k) ⊗ A(k,:)`` in place.

    ``diag`` multiplies from the *left* (paper Alg. 2, PanelUpdate).
    The panel aliases one operand; each backend handles that with the
    narrowest snapshot its tiling needs.
    """
    return get_backend(backend).panel_row_update(panel, diag, semiring=semiring)


def panel_col_update(
    panel: np.ndarray,
    diag: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    backend: BackendArg = None,
) -> np.ndarray:
    """Column-panel update ``A(:,k) ← A(:,k) ⊕ A(:,k) ⊗ A(k,k)`` in place.

    ``diag`` multiplies from the *right* (paper Alg. 2, PanelUpdate).
    """
    return get_backend(backend).panel_col_update(panel, diag, semiring=semiring)
