"""(min,+) kernels that carry next-hop pointers.

These back *distributed shortest-path generation* (the paper's first
future-work item): every distance update also updates a parallel
next-hop matrix, so paths come out of the distributed sweep itself
rather than from post-processing.

The update rule: when ``C[r, c]`` improves via intermediate ``t``
(i.e. ``A[r, t] + B[t, c] < C[r, c]``), the first hop of the new best
path is the first hop of the path behind ``A[r, t]`` - so the kernels
need the *left* operand's next-hop block only.  In the blocked
algorithm that means the column panels (and the diagonal) carry their
pointer blocks over the wire, while row panels travel as distances
only; the asymmetry is visible in the communication accounting.

All kernels are (min,+)-specific: argmin tracking has no meaning for a
general semiring ``⊕``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .backends import KernelBackend, get_backend

__all__ = [
    "NO_HOP",
    "init_next_hops",
    "srgemm_accumulate_paths",
    "fw_inplace_paths",
]

#: Sentinel for "no next hop" (same vertex, or unreachable).
NO_HOP = -1


def init_next_hops(weights: np.ndarray, col_offset: int = 0) -> np.ndarray:
    """Initial next-hop block for a weight block.

    ``nxt[r, c] = global column id`` where an edge exists, else
    :data:`NO_HOP`.  ``col_offset`` is the block's global column start
    (next hops are global vertex ids).  The caller is responsible for
    clearing the diagonal of diagonal blocks.
    """
    rows, cols = weights.shape
    nxt = np.where(
        np.isfinite(weights),
        np.arange(col_offset, col_offset + cols, dtype=np.int64)[None, :],
        np.int64(NO_HOP),
    )
    return np.ascontiguousarray(nxt)


def srgemm_accumulate_paths(
    c: np.ndarray,
    c_nxt: np.ndarray,
    a: np.ndarray,
    a_nxt: np.ndarray,
    b: np.ndarray,
    k_chunk: Optional[int] = None,
    backend: Union[str, KernelBackend, None] = None,
) -> np.ndarray:
    """Fused ``C ← C ⊕ A ⊗ B`` that also updates ``C``'s next hops.

    Wherever the product improves ``C[r, c]`` through intermediate
    ``t``, sets ``c_nxt[r, c] = a_nxt[r, t*]`` for the minimizing
    ``t*``.  Strict improvement only, so existing (equally good) paths
    are kept - updates stay idempotent, as the blocked schedules
    require.  Dispatches to the selected kernel backend; all backends
    run path numerics in the operand dtype and chunk the k dimension
    with the shared tuner, so hop choices are backend-invariant.
    """
    return get_backend(backend).srgemm_accumulate_paths(c, c_nxt, a, a_nxt, b, k_chunk=k_chunk)


def fw_inplace_paths(dist: np.ndarray, nxt: np.ndarray) -> np.ndarray:
    """Classic Floyd-Warshall on one block, carrying next hops.

    The block is treated as a closed subproblem (the DiagUpdate):
    intermediates are the block's own vertices, and ``nxt`` entries are
    global ids, so relabeling is not needed.
    """
    n = dist.shape[0]
    if dist.shape != (n, n) or nxt.shape != (n, n):
        raise ValueError(f"square blocks required, got {dist.shape} / {nxt.shape}")
    for k in range(n):
        via = dist[:, k, None] + dist[None, k, :]
        better = via < dist
        if not better.any():
            continue
        dist[better] = via[better]
        # First hop toward k's path: column k of nxt, broadcast per row.
        nxt[better] = np.broadcast_to(nxt[:, k, None], (n, n))[better]
    return dist
