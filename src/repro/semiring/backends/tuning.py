"""Byte-budget tiling auto-tuner for the SrGemm kernel backends.

The paper's GPU kernel (cuASR/CUTLASS, §2.6/§4.1) owes its 6.8 TF/s to
staging fixed-size operand tiles through shared memory; the NumPy
analogue is bounding every kernel temporary by a byte budget sized to
stay cache-resident.  This module is the pure arithmetic that turns a
budget plus problem shape into concrete tile / k-chunk sizes - it has
no dependencies beyond the standard library, so both the kernel
backends (:mod:`repro.semiring.backends`) and the model-driven tuning
layer (:mod:`repro.perfmodel.tuning`, which re-exports it) can use it
without import cycles.

The budget replaces the old hardcoded ``DEFAULT_K_CHUNK = 64``: the
reference backend derives its k-chunk so the ``(m, k_chunk, n)``
broadcast temporary stays under the budget, and the tiled backend
derives its ``(m, n)`` tile so the accumulation scratch stays under
half the budget (the other half is headroom for the alias snapshot the
panel updates take - see the aliasing contract in
:class:`repro.semiring.backends.base.KernelBackend`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DEFAULT_KERNEL_BYTE_BUDGET",
    "ENV_BYTE_BUDGET",
    "KernelTiling",
    "kernel_byte_budget",
    "tune_kernel_tiling",
]

#: Default bound on any single kernel temporary: 8 MiB keeps the
#: working set inside a typical L2/L3 slice, and reproduces the old
#: ``DEFAULT_K_CHUNK = 64`` behaviour exactly at the 128x128 float64
#: blocks the test suite favours (128 * 64 * 128 * 8 B = 8 MiB).
DEFAULT_KERNEL_BYTE_BUDGET = 8 * 1024 * 1024

#: Environment override for the budget (bytes).
ENV_BYTE_BUDGET = "REPRO_SRGEMM_BYTE_BUDGET"


def kernel_byte_budget(override: Optional[int] = None) -> int:
    """Resolve the kernel temporary byte budget.

    Precedence: explicit ``override`` > ``REPRO_SRGEMM_BYTE_BUDGET``
    environment variable > :data:`DEFAULT_KERNEL_BYTE_BUDGET`.
    """
    if override is not None:
        budget = int(override)
    else:
        env = os.environ.get(ENV_BYTE_BUDGET)
        budget = int(env) if env else DEFAULT_KERNEL_BYTE_BUDGET
    if budget < 1:
        raise ValueError(f"kernel byte budget must be positive, got {budget}")
    return budget


@dataclass(frozen=True)
class KernelTiling:
    """Concrete tile sizes for one SrGemm shape under a byte budget.

    Attributes
    ----------
    tile_m, tile_n:
        Output-tile dimensions for 2-D-tiled backends; the ``(tile_m,
        tile_n)`` accumulation scratch occupies at most half the
        budget.
    k_chunk:
        Inner-dimension chunk for backends that materialize an
        ``(m, k_chunk, n)`` broadcast temporary (the reference
        backend); sized so that temporary stays within the budget.
    byte_budget:
        The resolved budget the sizes were derived from.
    """

    tile_m: int
    tile_n: int
    k_chunk: int
    byte_budget: int


def tune_kernel_tiling(
    m: int,
    n: int,
    k: int,
    itemsize: int = 8,
    byte_budget: Optional[int] = None,
    reduce_planes: int = 0,
) -> KernelTiling:
    """Pick tile / k-chunk sizes for an ``(m, n, k)`` SrGemm.

    Parameters
    ----------
    m, n, k:
        Problem shape: ``C (m x n) ← C ⊕ A (m x k) ⊗ B (k x n)``.
    itemsize:
        Bytes per element of the *compute* dtype (8 for float64, 4 for
        the float32 path - halving it doubles the elements a tile may
        hold, which is where the float32 bandwidth saving comes from).
        Backends resolve this via
        :meth:`repro.semiring.backends.base.KernelBackend.compute_itemsize`
        so a float32 compute path is sized by 4-byte elements even when
        the operands arrive as float64.
    byte_budget:
        Optional budget override; see :func:`kernel_byte_budget`.
    reduce_planes:
        Number of extra ``(m, n)`` planes the backend keeps alive
        alongside the ``(m, k_chunk, n)`` broadcast temporary (the
        tensor backend's reduction output is one such plane).  Their
        bytes are reserved off the budget *before* sizing ``k_chunk``
        so the true peak stays bounded.
    """
    if m < 0 or n < 0 or k < 0:
        raise ValueError(f"negative kernel dimensions: ({m}, {n}, {k})")
    if reduce_planes < 0:
        raise ValueError(f"reduce_planes must be non-negative, got {reduce_planes}")
    budget = kernel_byte_budget(byte_budget)
    itemsize = max(1, int(itemsize))

    # Output tiles: scratch (tile_m x tile_n) capped at half the budget.
    # Keep tile_n (the contiguous axis of a C-ordered accumulator) as
    # wide as possible for long ufunc inner loops, then grow tile_m.
    cap_elems = max(1, (budget // 2) // itemsize)
    tile_n = max(1, min(n or 1, cap_elems))
    tile_m = max(1, min(m or 1, cap_elems // tile_n))

    # Broadcast chunk: (m, k_chunk, n) temporary, plus any reserved
    # reduction planes, within the full budget.
    plane = max(1, (m or 1) * (n or 1) * itemsize)
    chunk_budget = max(0, budget - reduce_planes * plane)
    k_chunk = max(1, min(k or 1, chunk_budget // plane))
    return KernelTiling(tile_m=tile_m, tile_n=tile_n, k_chunk=k_chunk, byte_budget=budget)
