"""The reference SrGemm backend: chunked 3-D broadcast (the oracle).

This is the kernel the repo grew up with: the triple loop
``C[i,j] = ⊕_k A[i,k] ⊗ B[k,j]`` evaluated in k-chunks so the
broadcast temporary stays at ``m * k_chunk * n`` elements - the NumPy
analogue of an *unfused* GPU GEMM that materializes the outer-product
slab before reducing it.  It is memory-bound (the slab is written and
re-read once per chunk), which is exactly the inefficiency the tiled
backend removes; it stays registered as the equivalence oracle every
other backend is tested against.

The k-chunk is now auto-tuned from the byte budget (the old hardcoded
``DEFAULT_K_CHUNK = 64`` fell out of the same arithmetic at 128x128
float64 blocks); an explicit ``k_chunk`` argument still overrides it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import KernelBackend, validate_accumulate

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Chunked broadcast-and-reduce kernel (the original formulation)."""

    name = "reference"

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        validate_accumulate(c, a, b)
        m, k = a.shape
        n = b.shape[1]
        if k == 0:
            return c
        step = k_chunk or self.tiling(m, n, k, self.compute_itemsize(a, b)).k_chunk
        plus, times = semiring.plus, semiring.times
        for k0 in range(0, k, step):
            k1 = min(k0 + step, k)
            # (m, kc, n) broadcast temporary == the "shared memory tile".
            partial = times(a[:, k0:k1, None], b[None, k0:k1, :])
            plus(c, semiring.plus_reduce(partial, axis=1), out=c)
        return c
