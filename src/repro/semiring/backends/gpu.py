"""Optional GPU SrGemm backend (cupy).

The paper's kernels run on V100s through cuASR/CUTLASS; the nearest
drop-in for this NumPy repo is cupy's broadcast formulation of the
same (min,+) product, k-chunked so the ``(m, k_chunk, n)`` candidate
tensor stays within a device byte budget (default 256 MiB - GPU memory
is the constraint, not L2; override via
``REPRO_SRGEMM_GPU_BYTE_BUDGET``).

cupy is a *soft* dependency, gated exactly like ``compiled``:

* cupy not importable       → ``available=False``,
  ``unavailable_reason="cupy is not installed"``;
* cupy present, no device   → ``available=False``,
  ``unavailable_reason="no CUDA device present"``.

The registry then refuses to hand the backend out with a clear error,
and the CLI ``backends`` listing shows the reason.  Nothing in the
default code path imports cupy.

When available, the four comparison-⊕ semirings run on device (exact
min/max reductions → bit-exact vs the float64 reference); other
semirings and non-float dtypes fall back to the tiled CPU path.
Host↔device transfers happen per call - this backend wins only when
``b`` is large enough that O(b³) compute dominates the O(b²) copies,
which matches the paper's regime.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import validate_accumulate
from .tiled import TiledBackend
from .tuning import tune_kernel_tiling

__all__ = ["CupyBackend", "HAVE_CUPY"]

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy

    HAVE_CUPY = True
except ImportError:
    cupy = None
    HAVE_CUPY = False

#: Device-side budget for the (m, k_chunk, n) candidate tensor.
DEFAULT_GPU_BYTE_BUDGET = 256 * 1024 * 1024
ENV_GPU_BYTE_BUDGET = "REPRO_SRGEMM_GPU_BYTE_BUDGET"

#: Semirings with exact device reductions.
_DEVICE_SEMIRINGS = ("min_plus", "max_plus", "max_min", "min_max")


def _probe_device() -> Optional[str]:  # pragma: no cover - requires cupy
    """None if a CUDA device is usable, else the reason it is not."""
    try:
        if cupy.cuda.runtime.getDeviceCount() < 1:
            return "no CUDA device present"
    except Exception:
        return "no CUDA device present"
    return None


class CupyBackend(TiledBackend):
    """cupy chunked-broadcast kernel; tiled CPU fallback for semirings
    the device path does not cover."""

    def __init__(self, byte_budget: Optional[int] = None):
        super().__init__(byte_budget=byte_budget, name="cupy")
        if not HAVE_CUPY:
            self.available = False
            self.unavailable_reason = "cupy is not installed"
        else:  # pragma: no cover - requires cupy
            reason = _probe_device()
            self.available = reason is None
            self.unavailable_reason = reason

    @staticmethod
    def _gpu_budget() -> int:
        env = os.environ.get(ENV_GPU_BYTE_BUDGET)
        return int(env) if env else DEFAULT_GPU_BYTE_BUDGET

    def _device_ufuncs(self, semiring: Semiring):  # pragma: no cover - requires cupy
        return {
            "min_plus": (cupy.minimum, cupy.add),
            "max_plus": (cupy.maximum, cupy.add),
            "max_min": (cupy.maximum, cupy.minimum),
            "min_max": (cupy.minimum, cupy.maximum),
        }[semiring.name]

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        if (
            not self.available
            or semiring.name not in _DEVICE_SEMIRINGS
            or c.dtype.kind != "f"
        ):
            return super().srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)
        return self._device_accumulate(c, a, b, semiring, k_chunk)

    def _device_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring,
        k_chunk: Optional[int],
    ) -> np.ndarray:  # pragma: no cover - requires cupy + device
        validate_accumulate(c, a, b)
        m, k = a.shape
        n = b.shape[1]
        if k == 0 or m == 0 or n == 0:
            return c
        plus, times = self._device_ufuncs(semiring)
        step = k_chunk or tune_kernel_tiling(
            m, n, k, self.compute_itemsize(a, b), self._gpu_budget(), reduce_planes=1
        ).k_chunk
        d_c = cupy.asarray(c)
        d_a = cupy.asarray(a)
        d_b = cupy.asarray(b)
        for k0 in range(0, k, step):
            k1 = min(k0 + step, k)
            cand = times(d_a[:, k0:k1, None], d_b[None, k0:k1, :])
            plus(d_c, plus.reduce(cand, axis=1), out=d_c)
        np.copyto(c, cupy.asnumpy(d_c))
        return c

    def describe(self) -> str:
        return f"cupy chunked broadcast on device; {super().describe()}"
