"""Optional JIT-compiled SrGemm backend (numba).

When numba is installed this backend compiles the fused triple loop
``C[i,j] ← ⊕_k C[i,j], A[i,k] ⊗ B[k,j]`` to native code - the closest
a pure-Python repo gets to the paper's CUTLASS kernel: no temporaries
at all, register-resident accumulation, and the i/t/j loop order keeps
``B`` rows streaming contiguously.

numba is a *soft* dependency: when it is absent the backend still
registers (so the name is discoverable and the CLI can explain why it
is unusable) but reports ``available = False``, and the registry
refuses to hand it out with a clear error.  Nothing in the default
code path imports numba.

The four comparison-⊕ semirings (min_plus, max_plus, max_min, min_max)
are compiled; any other semiring (boolean, plus_times) falls back to
the tiled backend's NumPy path so the backend is total over
``SEMIRINGS``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import validate_accumulate
from .tiled import TiledBackend

__all__ = ["CompiledBackend", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: Opcodes for the jitted kernel's ⊕/⊗ dispatch.
_OPCODES = {"min_plus": 0, "max_plus": 1, "max_min": 2, "min_max": 3}

_jit_accumulate: Optional[Callable] = None


def _build_kernel():  # pragma: no cover - requires numba
    """Compile the fused accumulate kernel once, lazily."""
    global _jit_accumulate
    if _jit_accumulate is not None:
        return _jit_accumulate

    @numba.njit(cache=True, fastmath=False)
    def accumulate(c, a, b, op):
        m, k = a.shape
        n = b.shape[1]
        for i in range(m):
            for t in range(k):
                ait = a[i, t]
                for j in range(n):
                    if op == 0:
                        cand = ait + b[t, j]
                        if cand < c[i, j]:
                            c[i, j] = cand
                    elif op == 1:
                        cand = ait + b[t, j]
                        if cand > c[i, j]:
                            c[i, j] = cand
                    elif op == 2:
                        cand = ait if ait < b[t, j] else b[t, j]
                        if cand > c[i, j]:
                            c[i, j] = cand
                    else:
                        cand = ait if ait > b[t, j] else b[t, j]
                        if cand < c[i, j]:
                            c[i, j] = cand

    _jit_accumulate = accumulate
    return accumulate


class CompiledBackend(TiledBackend):
    """numba-JIT fused kernel; NumPy (tiled) fallback for semirings the
    jitted dispatch does not cover."""

    def __init__(self, byte_budget: Optional[int] = None):
        super().__init__(byte_budget=byte_budget, name="compiled")
        self.available = HAVE_NUMBA
        self.unavailable_reason = None if HAVE_NUMBA else "numba is not installed"

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        op = _OPCODES.get(semiring.name)
        if op is None or c.dtype.kind != "f":
            # Boolean / ring semirings: total via the tiled NumPy path.
            return super().srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)
        if not HAVE_NUMBA:  # pragma: no cover - registry normally filters this
            raise RuntimeError("compiled backend invoked without numba installed")
        validate_accumulate(c, a, b)
        if a.shape[1] == 0:
            return c
        kernel = _build_kernel()
        kernel(c, np.ascontiguousarray(a), np.ascontiguousarray(b), op)
        return c
