"""Cache-blocked 2-D tiled SrGemm backend (fused, budget-bounded).

The performance lesson of the paper's kernel layer (§2.6/§4.1) and of
the related FW-kernel work (Lund & Smith's multi-stage tiling, Anjary's
blocked-vs-broadcast comparison) applied to NumPy: never materialize
the ``(m, k, n)`` outer-product slab.  The output is cut into
``(tile_m, tile_n)`` tiles sized by the byte-budget auto-tuner; each
tile is accumulated **in place** with rank-1 updates

    scratch ← A[:, t] ⊗ B[t, :]         (one (tile_m, tile_n) broadcast)
    C_tile  ← C_tile ⊕ scratch          (in-place, no reduction pass)

so the only temporary is one scratch tile that stays cache-resident.
Against the reference backend this roughly halves memory traffic and
removes all slab allocation churn (measured ~2-2.5x at b=256 float64;
see ``benchmarks/results/ablation_kernel_backends.txt``).

The optional float32 compute path (registered as ``tiled-f32``) casts
float operands to float32 before the product loop, halving bandwidth
again.  Accumulation still lands in the caller's array dtype; the
documented tolerance versus the float64 reference is ``rtol = 1e-5``
(each candidate ``a + b`` suffers one float32 rounding, and a
comparison-⊕ may then pick a neighbouring near-tie).  Path-tracking
kernels always run in the operand dtype - hop pointers must not depend
on the precision mode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import KernelBackend, validate_accumulate

__all__ = ["TiledBackend"]


class TiledBackend(KernelBackend):
    """Budget-bounded (m, n)-tiled kernel with in-place accumulation."""

    def __init__(
        self,
        compute_dtype: Optional[np.dtype] = None,
        byte_budget: Optional[int] = None,
        name: Optional[str] = None,
    ):
        super().__init__(byte_budget=byte_budget)
        self.compute_dtype = np.dtype(compute_dtype) if compute_dtype is not None else None
        if self.compute_dtype is not None and self.compute_dtype.kind != "f":
            raise ValueError(f"compute_dtype must be a float dtype, got {self.compute_dtype}")
        if name is not None:
            self.name = name
        elif self.compute_dtype is None:
            self.name = "tiled"
        else:
            self.name = f"tiled-f{self.compute_dtype.itemsize * 8}"
        self.rtol = 0.0 if self.compute_dtype is None else 1e-5

    def _cast(self, arr: np.ndarray) -> np.ndarray:
        """Cast a float operand to the compute dtype (no-op otherwise;
        bool/int semirings always compute in their own dtype)."""
        if (
            self.compute_dtype is None
            or arr.dtype.kind != "f"
            or arr.dtype == self.compute_dtype
        ):
            return arr
        return arr.astype(self.compute_dtype)

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        validate_accumulate(c, a, b)
        m, k = a.shape
        n = b.shape[1]
        if k == 0 or m == 0 or n == 0:
            return c
        plus, times = semiring.plus, semiring.times
        a = self._cast(np.asarray(a))
        b = self._cast(np.asarray(b))
        scratch_dtype = np.result_type(a.dtype, b.dtype)
        t = self.tiling(m, n, k, scratch_dtype.itemsize)
        scratch = np.empty((min(t.tile_m, m), min(t.tile_n, n)), dtype=scratch_dtype)
        for i0 in range(0, m, t.tile_m):
            i1 = min(i0 + t.tile_m, m)
            for j0 in range(0, n, t.tile_n):
                j1 = min(j0 + t.tile_n, n)
                c_tile = c[i0:i1, j0:j1]
                sv = scratch[: i1 - i0, : j1 - j0]
                for kk in range(k):
                    times(a[i0:i1, kk : kk + 1], b[kk, j0:j1], out=sv)
                    plus(c_tile, sv, out=c_tile)
        return c

    # -- alias-narrow panel updates -----------------------------------------
    # The panel is both the accumulator C and one operand; each output
    # stripe only ever reads the operand slice with the same column
    # (row update) or row (col update) extent, so the snapshot narrows
    # from the whole panel to one (k, tile) stripe bounded by half the
    # byte budget.  Stripes are independent: stripe i's reads never
    # touch stripe j's writes, so the result is identical to the
    # full-copy formulation.

    def panel_row_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        if diag.shape[0] != diag.shape[1] or diag.shape[1] != panel.shape[0]:
            raise ValueError(f"diag {diag.shape} incompatible with row panel {panel.shape}")
        k, n = panel.shape
        if k == 0 or n == 0:
            return panel
        budget = self.resolved_byte_budget()
        tile_n = max(1, min(n, (budget // 2) // max(1, k * panel.dtype.itemsize)))
        for j0 in range(0, n, tile_n):
            j1 = min(j0 + tile_n, n)
            stripe = panel[:, j0:j1].copy()  # the k-slice this stripe reads
            self.srgemm_panel(panel[:, j0:j1], diag, stripe, semiring=semiring)
        return panel

    def panel_col_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        if diag.shape[0] != diag.shape[1] or panel.shape[1] != diag.shape[0]:
            raise ValueError(f"diag {diag.shape} incompatible with column panel {panel.shape}")
        m, k = panel.shape
        if k == 0 or m == 0:
            return panel
        budget = self.resolved_byte_budget()
        tile_m = max(1, min(m, (budget // 2) // max(1, k * panel.dtype.itemsize)))
        for i0 in range(0, m, tile_m):
            i1 = min(i0 + tile_m, m)
            stripe = panel[i0:i1, :].copy()  # the k-slice this stripe reads
            self.srgemm_panel(panel[i0:i1, :], stripe, diag, semiring=semiring)
        return panel
