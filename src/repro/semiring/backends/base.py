"""The SrGemm kernel-backend contract.

A :class:`KernelBackend` is one interchangeable implementation of the
semiring matrix-product kernels every solver in this repo bottoms out
in - the role cuASR/CUTLASS plays for the paper (§2.6/§4.1).  Backends
are registered with :mod:`repro.semiring.backends` and selected by
name (API argument, ``REPRO_SRGEMM_BACKEND`` environment variable, or
CLI flag), so one switch changes the kernel under ``blocked_fw``, the
distributed rank programs and the ooGSrGemm offload pipeline alike.

The contract
------------
* ``srgemm(a, b)`` - fresh-output product ``A ⊗ B``.
* ``srgemm_accumulate(c, a, b)`` - fused in-place ``C ← C ⊕ A ⊗ B``,
  the shape of every update in blocked Floyd-Warshall (Alg. 2).
* ``panel_row_update(panel, diag)`` / ``panel_col_update(panel, diag)``
  - the self-referential PanelUpdates ``P ← P ⊕ D ⊗ P`` and
  ``P ← P ⊕ P ⊗ D``.
* ``srgemm_accumulate_paths(...)`` - the (min,+) variant that carries
  next-hop pointers.

Aliasing contract
-----------------
``srgemm_accumulate`` may assume that neither ``a`` nor ``b`` shares
memory with ``c``; behaviour under overlap is undefined.  The panel
updates are exactly the two places the blocked algorithm violates that
(the panel is simultaneously the accumulator and one operand), so
*they* own the aliasing problem: a backend must snapshot, per output
tile, **no more than the operand slice that tile still needs to read**
before overwriting it.  The base implementation snapshots the whole
panel (always correct); the tiled backend narrows the snapshot to one
k-slice stripe per output stripe, bounding the copy by the byte budget
instead of the panel size.

Phase-specialized entry points
------------------------------
Blocked Floyd-Warshall touches the kernel waist in three distinct
roles (paper Alg. 2): the *diagonal* update (inherently serial in
``k``), the *panel* updates along the pivot row/column, and the bulk
*outer-product* MinPlus updates.  ``srgemm_diag`` / ``srgemm_panel`` /
``srgemm_outer`` expose those roles so a multi-stage backend can swap
in a kernel shaped for each phase; all three default to the fused
``srgemm_accumulate`` path, so single-kernel backends participate
unchanged.  Call sites (``core/executor.py``, ``core/blocked.py``,
``core/oog_srgemm.py``, ``semiring/closure.py``) dispatch per phase,
and the verify/obs wrappers forward each entry to the matching inner
entry so specialization survives composition.

Equivalence contract
--------------------
For float64 inputs a backend must match the reference backend
*bit-for-bit* on every comparison-⊕ semiring (min/max are exact, and
any association of an exact idempotent reduction yields the same
value).  For non-idempotent ⊕ (``plus_times``) the association order
may differ, so results are only ``allclose``.  A backend with a
reduced-precision compute path advertises its tolerance via ``rtol``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .tuning import KernelTiling, kernel_byte_budget, tune_kernel_tiling

__all__ = ["KernelBackend", "validate_pair", "validate_accumulate"]


def validate_pair(a: np.ndarray, b: np.ndarray) -> None:
    """Shape checks shared by every backend's ``srgemm`` entry."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"srgemm operands must be 2-D, got {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")


def validate_accumulate(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
    validate_pair(a, b)
    m, _ = a.shape
    n = b.shape[1]
    if c.shape != (m, n):
        raise ValueError(f"accumulator shape {c.shape} does not match product shape {(m, n)}")


class KernelBackend:
    """Base class / default implementations for SrGemm backends."""

    #: Registry key; subclasses override.
    name: str = "abstract"
    #: Compute dtype the backend casts float operands to (None keeps
    #: the operand dtype).  Advertised so call sites can reason about
    #: precision and the cost layer about bandwidth.
    compute_dtype: Optional[np.dtype] = None
    #: Relative tolerance versus the reference backend (0.0 = exact on
    #: comparison-⊕ semirings; nonzero for reduced-precision paths).
    rtol: float = 0.0
    #: Multiplier applied to modeled SrGemm kernel durations by the
    #: simulated GPU (see :meth:`repro.machine.gpu.CudaStream.kernel`).
    #: All shipped backends model the *same* paper kernel (the fp32
    #: cuASR SrGemm the cost model is calibrated against), so they keep
    #: the neutral 1.0; the knob exists to model hypothetical kernels
    #: (e.g. a true-fp64 variant at ~2x memory traffic).
    modeled_cost_scale: float = 1.0
    #: False when a soft dependency is missing; the registry then
    #: refuses to hand the backend out and reports ``unavailable_reason``.
    available: bool = True
    unavailable_reason: Optional[str] = None

    def __init__(self, byte_budget: Optional[int] = None):
        #: Per-instance budget override (None = env var / default).
        self.byte_budget = byte_budget

    # -- tiling --------------------------------------------------------------
    def tiling(self, m: int, n: int, k: int, itemsize: int) -> KernelTiling:
        """The auto-tuned tile/k-chunk sizes this backend will use for
        an ``(m, n, k)`` product at the given compute itemsize."""
        return tune_kernel_tiling(m, n, k, itemsize, self.byte_budget)

    def resolved_byte_budget(self) -> int:
        return kernel_byte_budget(self.byte_budget)

    def compute_itemsize(self, *operands: np.ndarray) -> int:
        """Bytes per element of the dtype the kernel actually computes
        in: the advertised ``compute_dtype`` when set, else the
        operands' result dtype.  Tiling must be sized by *this* width -
        a float32 compute path fits twice the elements per byte budget
        even when the operands arrive as float64.  (Path kernels are
        the exception: they always run in operand dtype so next-hop
        choices stay backend-invariant.)
        """
        if self.compute_dtype is not None:
            return np.dtype(self.compute_dtype).itemsize
        if operands:
            return np.result_type(*[o.dtype for o in operands]).itemsize
        return 8

    # -- the SrGemm contract -------------------------------------------------
    def srgemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """Return ``A ⊗ B`` as a fresh array."""
        validate_pair(a, b)
        m, k = a.shape
        n = b.shape[1]
        out = semiring.zeros((m, n), dtype=np.result_type(a.dtype, b.dtype))
        if k == 0:
            return out
        return self.srgemm_accumulate(out, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """In-place fused ``C ← C ⊕ A ⊗ B``; returns ``c``.

        ``a`` and ``b`` must not alias ``c`` (see the module docs).
        ``k_chunk`` overrides the auto-tuned inner chunk where the
        backend uses one.
        """
        raise NotImplementedError

    # -- phase-specialized entry points --------------------------------------
    # Each defaults to the fused path; multi-stage backends override the
    # ones they specialize.  All share srgemm_accumulate's signature,
    # shape checks, and aliasing contract.
    def srgemm_diag(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """DiagUpdate-phase product (pivot-block closure steps);
        inherently serial in ``k``."""
        return self.srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_panel(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """PanelUpdate-phase product (pivot row/column panels).  The
        *non-aliased* product step; the aliasing dance stays inside
        ``panel_row_update`` / ``panel_col_update``, which snapshot and
        then call this entry."""
        return self.srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_outer(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """MinPlus outer-product phase - the bulk of the flops and the
        most profitable phase to specialize."""
        return self.srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def panel_row_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        """Row-panel update ``P ← P ⊕ D ⊗ P`` in place (``diag``
        multiplies from the left; paper Alg. 2, PanelUpdate)."""
        if diag.shape[0] != diag.shape[1] or diag.shape[1] != panel.shape[0]:
            raise ValueError(f"diag {diag.shape} incompatible with row panel {panel.shape}")
        # Full-panel snapshot: always alias-safe, at panel-sized cost.
        return self.srgemm_panel(panel, diag, panel.copy(), semiring=semiring)

    def panel_col_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        """Column-panel update ``P ← P ⊕ P ⊗ D`` in place (``diag``
        multiplies from the right)."""
        if diag.shape[0] != diag.shape[1] or panel.shape[1] != diag.shape[0]:
            raise ValueError(f"diag {diag.shape} incompatible with column panel {panel.shape}")
        return self.srgemm_panel(panel, panel.copy(), diag, semiring=semiring)

    # -- path tracking -------------------------------------------------------
    def srgemm_accumulate_paths(
        self,
        c: np.ndarray,
        c_nxt: np.ndarray,
        a: np.ndarray,
        a_nxt: np.ndarray,
        b: np.ndarray,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        """Fused (min,+) ``C ← C ⊕ A ⊗ B`` updating ``C``'s next hops.

        Wherever the product improves ``C[r, c]`` through intermediate
        ``t``, sets ``c_nxt[r, c] = a_nxt[r, t*]`` for the minimizing
        ``t*``.  Strict improvement only, so equally-good existing
        paths are kept and updates stay idempotent.  Path numerics
        always run in the operand dtype (never the reduced-precision
        compute path), and every backend walks the k-chunks produced by
        the shared tuner in order, so hop choices are backend-invariant.
        """
        m, k = a.shape
        n = b.shape[1]
        if b.shape[0] != k or c.shape != (m, n) or c_nxt.shape != (m, n) or a_nxt.shape != (m, k):
            raise ValueError(
                f"shape mismatch: C{c.shape}/NC{c_nxt.shape} A{a.shape}/NA{a_nxt.shape} B{b.shape}"
            )
        if k == 0:
            return c
        itemsize = np.result_type(a.dtype, b.dtype).itemsize
        step = k_chunk or self.tiling(m, n, k, itemsize).k_chunk
        for k0 in range(0, k, step):
            k1 = min(k0 + step, k)
            cand = a[:, k0:k1, None] + b[None, k0:k1, :]  # (m, kc, n)
            best = cand.min(axis=1)
            arg = cand.argmin(axis=1)  # minimizing t within the chunk
            better = best < c
            if not better.any():
                continue
            c[better] = best[better]
            # c_nxt[r, c] = a_nxt[r, k0 + arg[r, c]] where improved.
            hop = np.take_along_axis(a_nxt, k0 + arg, axis=1)
            c_nxt[better] = hop[better]
        return c

    # -- introspection -------------------------------------------------------
    def describe(self) -> str:
        """One-line human description (CLI ``backends`` listing)."""
        dtype = f"compute {np.dtype(self.compute_dtype).name}" if self.compute_dtype else "operand dtype"
        status = "" if self.available else f"  [unavailable: {self.unavailable_reason}]"
        return f"{dtype}, rtol {self.rtol:g}{status}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"
