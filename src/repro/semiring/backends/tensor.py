"""Vectorized 3-D-tensor SrGemm backend (buffered broadcast).

The broadcast formulation from Anjary 2023 (see PAPERS.md): evaluate
``C[i,j] ← ⊕_t A[i,t] ⊗ B[t,j]`` as one vectorized ufunc pass over the
``(m, k_chunk, n)`` candidate tensor.  The reference backend already
does this shape; what makes ``tensor`` a *fast path* rather than an
oracle is allocation discipline:

* the candidate tensor and the ``(m, n)`` reduction plane are allocated
  **once** per call and reused across k-chunks (``times(..., out=...)``
  / ``ufunc.reduce(..., out=...)``), so the chunk loop is free of
  allocation churn and the pages stay hot;
* the k-chunk is sized by the shared byte-budget tuner with
  ``reduce_planes=1``, reserving the reduction plane's bytes off the
  budget before sizing the candidate tensor - so true peak memory stays
  bounded by the budget, which the reference backend's sizing ignores.

The backend is generic over every registered semiring (the ufuncs come
straight from the :class:`~repro.semiring.minplus.Semiring`), computes
in the operand dtype, and is bit-exact against the reference on every
comparison-⊕ semiring by construction (same chunk walk, same exact
reductions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import KernelBackend, validate_accumulate
from .tuning import tune_kernel_tiling

__all__ = ["TensorBackend"]


class TensorBackend(KernelBackend):
    """Buffer-reusing broadcast 3-D tensor kernel."""

    name = "tensor"

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        validate_accumulate(c, a, b)
        m, k = a.shape
        n = b.shape[1]
        if k == 0 or m == 0 or n == 0:
            return c
        step = k_chunk or tune_kernel_tiling(
            m, n, k, self.compute_itemsize(a, b), self.byte_budget, reduce_planes=1
        ).k_chunk
        step = min(step, k)
        plus, times = semiring.plus, semiring.times
        dtype = np.result_type(a.dtype, b.dtype)
        cand = np.empty((m, step, n), dtype=dtype)
        red = np.empty((m, n), dtype=dtype)
        for k0 in range(0, k, step):
            k1 = min(k0 + step, k)
            cv = cand[:, : k1 - k0, :]
            times(a[:, k0:k1, None], b[None, k0:k1, :], out=cv)
            plus.reduce(cv, axis=1, out=red)  # type: ignore[attr-defined]
            plus(c, red, out=c)
        return c

    def describe(self) -> str:
        return f"broadcast 3-D tensor, buffered k-chunks; {super().describe()}"
