"""Pluggable SrGemm kernel backends and their registry.

Every solver in this repo - :func:`repro.core.blocked.blocked_fw`, the
baseline/pipelined distributed rank programs and the out-of-GPU-memory
ooGSrGemm pipeline - bottoms out in one SrGemm kernel.  This package
makes that kernel a pluggable *backend* (the role the cuASR/CUTLASS
kernel plays for the paper, §2.6/§4.1) so one switch changes it
everywhere.

Shipped backends
----------------
``reference``
    The original chunked 3-D broadcast kernel; the equivalence oracle.
``tiled``
    Cache-blocked 2-D tiling with in-place accumulation, bounded by a
    byte budget (the default-budget analogue of CUTLASS tile staging).
``tiled-f32``
    The tiled kernel with an opt-in float32 compute path (~2x
    memory-bandwidth saving, documented ``rtol = 1e-5``).
``tensor``
    Buffer-reusing broadcast 3-D tensor kernel (Anjary-style
    vectorized formulation) with budget-bounded k-chunks.
``cnative``
    Multi-stage C kernel compiled at first use with the system
    ``cc``/``gcc``/``clang`` (ctypes); unavailable when no compiler is
    on PATH.  The fastest CPU path without numba.
``compiled``
    numba-JIT fused triple loop; auto-marked unavailable when numba is
    not installed.
``compiled-ms``
    numba multi-stage kernels: serial diag, ``prange`` row-parallel
    panel/outer; unavailable without numba.
``cupy``
    GPU chunked-broadcast kernel; unavailable without cupy or without
    a CUDA device, with the reason reported.

Selection precedence
--------------------
explicit ``backend=`` argument  >  :func:`set_default_backend`  >
``REPRO_SRGEMM_BACKEND`` environment variable  >  ``"reference"``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

import numpy as np

from ...errors import BackendUnavailableError, ConfigurationError
from .base import KernelBackend
from .cnative import CNativeBackend
from .compiled import HAVE_NUMBA, CompiledBackend
from .gpu import HAVE_CUPY, CupyBackend
from .multistage import MultiStageBackend
from .reference import ReferenceBackend
from .tensor import TensorBackend
from .tiled import TiledBackend
from .tuning import (
    DEFAULT_KERNEL_BYTE_BUDGET,
    ENV_BYTE_BUDGET,
    KernelTiling,
    kernel_byte_budget,
    tune_kernel_tiling,
)

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "TiledBackend",
    "TensorBackend",
    "CNativeBackend",
    "CompiledBackend",
    "MultiStageBackend",
    "CupyBackend",
    "HAVE_NUMBA",
    "HAVE_CUPY",
    "KernelTiling",
    "kernel_byte_budget",
    "tune_kernel_tiling",
    "DEFAULT_KERNEL_BYTE_BUDGET",
    "ENV_BYTE_BUDGET",
    "ENV_BACKEND",
    "BUILTIN_DEFAULT_BACKEND",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "set_default_backend",
    "default_backend_name",
    "use_backend",
]

#: Environment variable selecting the default backend by name.
ENV_BACKEND = "REPRO_SRGEMM_BACKEND"

#: Fallback when neither the API nor the environment chooses.
BUILTIN_DEFAULT_BACKEND = "reference"

_REGISTRY: dict[str, KernelBackend] = {}
_DEFAULT: Optional[str] = None


def register_backend(backend: KernelBackend, overwrite: bool = False) -> KernelBackend:
    """Add a backend to the registry under ``backend.name``."""
    name = backend.name
    if not name or name == "abstract":
        raise ConfigurationError(f"backend {backend!r} has no registry name")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def registered_backends() -> dict[str, KernelBackend]:
    """All registered backends by name, including unavailable ones."""
    return dict(_REGISTRY)


def available_backends() -> dict[str, KernelBackend]:
    """The registered backends whose soft dependencies are present."""
    return {name: b for name, b in _REGISTRY.items() if b.available}


def default_backend_name() -> str:
    """The name :func:`get_backend` resolves when given no name."""
    return _DEFAULT or os.environ.get(ENV_BACKEND) or BUILTIN_DEFAULT_BACKEND


def get_backend(name: Union[str, KernelBackend, None] = None) -> KernelBackend:
    """Resolve a backend by name (or pass an instance through).

    Raises :class:`~repro.errors.ConfigurationError` for unknown names
    and :class:`~repro.errors.BackendUnavailableError` for registered
    backends whose dependency is missing.
    """
    if isinstance(name, KernelBackend):
        backend = name
    else:
        resolved = name or default_backend_name()
        backend = _REGISTRY.get(resolved)
        if backend is None:
            raise ConfigurationError(
                f"unknown SrGemm backend {resolved!r}; registered: {sorted(_REGISTRY)}"
            )
    if not backend.available:
        raise BackendUnavailableError(backend.name, backend.unavailable_reason or "unavailable")
    return backend


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set the process-wide default backend; returns the previous
    explicit default (None restores env-var/builtin resolution)."""
    global _DEFAULT
    if name is not None:
        get_backend(name)  # validate: must exist and be available
    previous, _DEFAULT = _DEFAULT, name
    return previous


@contextmanager
def use_backend(name: Optional[str]):
    """Context manager: temporarily make ``name`` the default backend."""
    previous = set_default_backend(name)
    try:
        yield get_backend(name)
    finally:
        set_default_backend(previous)


# -- built-in registrations --------------------------------------------------
register_backend(ReferenceBackend())
register_backend(TiledBackend())
register_backend(TiledBackend(compute_dtype=np.float32))  # "tiled-f32"
register_backend(TensorBackend())
register_backend(CNativeBackend())
register_backend(CompiledBackend())
register_backend(MultiStageBackend())  # "compiled-ms"
register_backend(CupyBackend())
