"""Native-compiled SrGemm backend (system C compiler + ctypes).

The multi-stage blocked-FW kernel (Lund & Smith; see PAPERS.md)
expressed as a tiny C translation unit compiled *at first use* with
whatever ``cc``/``gcc``/``clang`` the host provides, then loaded
through :mod:`ctypes`.  This is the repo's fastest CPU path where
numba is not installed: the fused ``i/t/j`` loop with register-blocked
``j``-strips measures >10x the reference backend at b=256 float64.

Phase specialization is a strip-width parameter on one symbol family:

* ``srgemm_diag``  - full-width strips (``jb = n``): the diagonal
  block is small and k-serial, so plain streaming wins;
* ``srgemm_panel`` / ``srgemm_outer`` - 64-wide ``j``-strips keep the
  ``C`` row segment register/L1-resident across the whole ``t`` loop
  (the prototype's measured sweet spot).

Strip order cannot change results: every compiled semiring has a
comparison ``⊕``, which is exact under any association.

Correctness notes:

* **No ``-ffast-math``.**  Distance matrices carry ``inf`` for
  "no edge"; fast-math licenses the compiler to assume no inf/nan and
  would miscompile the relaxation.  Plain ``-O3 -march=native`` only.
* The C kernels require C-contiguous operands; non-contiguous
  accumulators (panel stripes are column slices) are staged through a
  contiguous copy and written back.
* Only the four comparison-⊕ semirings on float32/float64 are
  compiled; anything else falls back to the tiled NumPy path, so the
  backend is total over ``SEMIRINGS``.

The compiled library is cached under ``$REPRO_CNATIVE_CACHE`` (default:
a per-user directory under the system temp dir) keyed by a hash of the
C source, so recompiles only happen when the kernel text changes.  If
compilation fails at runtime the backend degrades to the tiled path
instead of erroring.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from typing import Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import validate_accumulate
from .tiled import TiledBackend

__all__ = ["CNativeBackend", "find_c_compiler", "ENV_CNATIVE_CACHE"]

#: Environment override for the compile cache directory.
ENV_CNATIVE_CACHE = "REPRO_CNATIVE_CACHE"

#: Register-blocked strip width for panel/outer phases (measured
#: sweet spot on the prototype; wide enough for full vector lanes,
#: narrow enough that a C-row strip stays in registers/L1).
PANEL_JB = 64
OUTER_JB = 64

_C_SOURCE = r"""
#define DEFINE_SRGEMM(NAME, T, CAND, BETTER)                            \
void NAME(T *restrict c, const T *restrict a, const T *restrict b,      \
          long m, long n, long k, long jb) {                            \
    if (jb < 1 || jb > n) jb = n > 0 ? n : 1;                           \
    for (long j0 = 0; j0 < n; j0 += jb) {                               \
        long j1 = j0 + jb < n ? j0 + jb : n;                            \
        for (long i = 0; i < m; i++) {                                  \
            T *restrict crow = c + i * n;                               \
            const T *restrict arow = a + i * k;                         \
            for (long t = 0; t < k; t++) {                              \
                T x = arow[t];                                          \
                const T *restrict brow = b + t * n;                     \
                for (long j = j0; j < j1; j++) {                        \
                    T y = brow[j];                                      \
                    T cand = (CAND);                                    \
                    T cur = crow[j];                                    \
                    /* unconditional select-store vectorizes to        \
                       vmin/vmax; a guarded store would branch */      \
                    crow[j] = (cand BETTER cur) ? cand : cur;           \
                }                                                       \
            }                                                           \
        }                                                               \
    }                                                                   \
}

DEFINE_SRGEMM(srgemm_min_plus_f64, double, x + y, <)
DEFINE_SRGEMM(srgemm_max_plus_f64, double, x + y, >)
DEFINE_SRGEMM(srgemm_max_min_f64, double, x < y ? x : y, >)
DEFINE_SRGEMM(srgemm_min_max_f64, double, x > y ? x : y, <)
DEFINE_SRGEMM(srgemm_min_plus_f32, float, x + y, <)
DEFINE_SRGEMM(srgemm_max_plus_f32, float, x + y, >)
DEFINE_SRGEMM(srgemm_max_min_f32, float, x < y ? x : y, >)
DEFINE_SRGEMM(srgemm_min_max_f32, float, x > y ? x : y, <)
"""

#: Semirings the C translation unit covers.
_COMPILED_SEMIRINGS = ("min_plus", "max_plus", "max_min", "min_max")


def find_c_compiler() -> Optional[str]:
    """First usable C compiler on PATH, or None."""
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _cache_dir() -> str:
    override = os.environ.get(ENV_CNATIVE_CACHE)
    if override:
        return override
    tag = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:12]
    return os.path.join(tempfile.gettempdir(), f"repro-cnative-{os.getuid()}-{tag}")


def _compile_library(cc: str) -> ctypes.CDLL:
    """Compile (or reuse) the kernel shared object and load it."""
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    lib_path = os.path.join(cache, "srgemm.so")
    if not os.path.exists(lib_path):
        src_path = os.path.join(cache, "srgemm.c")
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        base = [cc, "-O3", "-funroll-loops", "-shared", "-fPIC", "-o"]
        tmp_path = lib_path + ".tmp"
        for flags in (["-march=native"], []):  # retry portable if -march fails
            proc = subprocess.run(
                base[:1] + flags + base[1:] + [tmp_path, src_path],
                capture_output=True,
                text=True,
            )
            if proc.returncode == 0:
                break
        else:
            raise RuntimeError(f"cnative kernel compile failed:\n{proc.stderr}")
        os.replace(tmp_path, lib_path)  # atomic: concurrent compiles race safely
    return ctypes.CDLL(lib_path)


def _bind(lib: ctypes.CDLL) -> dict:
    """ctypes signatures for every (semiring, dtype) kernel."""
    table = {}
    for sr in _COMPILED_SEMIRINGS:
        for suffix, np_dtype, c_ptr in (
            ("f64", np.dtype(np.float64), ctypes.POINTER(ctypes.c_double)),
            ("f32", np.dtype(np.float32), ctypes.POINTER(ctypes.c_float)),
        ):
            fn = getattr(lib, f"srgemm_{sr}_{suffix}")
            fn.restype = None
            fn.argtypes = [c_ptr, c_ptr, c_ptr] + [ctypes.c_long] * 4
            table[(sr, np_dtype)] = fn
    return table


class CNativeBackend(TiledBackend):
    """System-cc compiled multi-stage kernel; tiled NumPy fallback for
    semirings/dtypes the C translation unit does not cover."""

    def __init__(self, byte_budget: Optional[int] = None):
        super().__init__(byte_budget=byte_budget, name="cnative")
        self._cc = find_c_compiler()
        self.available = self._cc is not None
        self.unavailable_reason = (
            None if self.available else "no C compiler (cc/gcc/clang) on PATH"
        )
        self._kernels: Optional[dict] = None  # lazy; False = compile failed

    # -- lazy compile --------------------------------------------------------
    def _kernel_for(self, semiring: Semiring, dtype: np.dtype):
        if self._kernels is None:
            try:
                self._kernels = _bind(_compile_library(self._cc))
            except (OSError, RuntimeError) as exc:  # pragma: no cover - env-specific
                warnings.warn(
                    f"cnative kernel compilation failed ({exc}); "
                    "falling back to the tiled NumPy path",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._kernels = False
        if not self._kernels:
            return None
        return self._kernels.get((semiring.name, dtype))

    # -- dispatch ------------------------------------------------------------
    def _native_accumulate(
        self, c: np.ndarray, a: np.ndarray, b: np.ndarray, semiring: Semiring, jb: int
    ) -> Optional[np.ndarray]:
        """Run the C kernel; None means "not covered, use fallback"."""
        if not self.available or semiring.name not in _COMPILED_SEMIRINGS:
            return None
        dtype = c.dtype
        if dtype not in (np.float64, np.float32) or a.dtype != dtype or b.dtype != dtype:
            return None
        fn = self._kernel_for(semiring, dtype)
        if fn is None:
            return None
        validate_accumulate(c, a, b)
        m, k = a.shape
        n = b.shape[1]
        if m == 0 or n == 0 or k == 0:
            return c
        a_c = np.ascontiguousarray(a)
        b_c = np.ascontiguousarray(b)
        # Panel stripes hand us column-slice views; the C kernel needs a
        # contiguous accumulator, so stage through a copy and write back.
        c_c = c if c.flags.c_contiguous else np.ascontiguousarray(c)
        ptr = ctypes.POINTER(ctypes.c_double if dtype == np.float64 else ctypes.c_float)
        fn(
            c_c.ctypes.data_as(ptr),
            a_c.ctypes.data_as(ptr),
            b_c.ctypes.data_as(ptr),
            m,
            n,
            k,
            jb,
        )
        if c_c is not c:
            np.copyto(c, c_c)
        return c

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        out = self._native_accumulate(c, a, b, semiring, OUTER_JB)
        if out is not None:
            return out
        return super().srgemm_accumulate(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_diag(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        out = self._native_accumulate(c, a, b, semiring, 0)  # full-width strips
        if out is not None:
            return out
        return super().srgemm_diag(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_panel(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        out = self._native_accumulate(c, a, b, semiring, PANEL_JB)
        if out is not None:
            return out
        return super().srgemm_panel(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_outer(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        out = self._native_accumulate(c, a, b, semiring, OUTER_JB)
        if out is not None:
            return out
        return super().srgemm_outer(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def describe(self) -> str:
        cc = os.path.basename(self._cc) if self._cc else "none"
        return (
            f"system-cc compiled multi-stage C kernel (cc: {cc}, "
            f"strips: diag=full panel={PANEL_JB} outer={OUTER_JB}); {super().describe()}"
        )
