"""Multi-stage numba backend: phase-specialized jitted kernels.

The Lund & Smith multi-stage blocked-FW design transposed to numba:
instead of one fused kernel for every update, each phase of blocked
Floyd-Warshall (Alg. 2) gets the kernel its dependency structure
allows:

* **diag** - the pivot-block update chains through ``k``, so it keeps
  the serial fused ``i/t/j`` kernel (shared with the plain ``compiled``
  backend; there is nothing to parallelize without changing results).
* **panel** / **outer** - after the aliasing snapshot (taken by the
  inherited stripe-narrowed ``panel_*_update``), these are independent
  row computations: the jitted kernels ``prange`` over output rows, so
  every worker owns a disjoint slice of ``C``, and specialize the
  inner loop for contiguous ``B`` rows.

``fastmath`` is restricted to ``{'contract'}`` (FMA licensing only):
distance matrices carry ``inf``, and the full fastmath set assumes
no inf/nan and would miscompile the relaxation.

Results are bit-exact versus the reference backend on every
comparison-⊕ semiring: parallelization only reorders an exact
idempotent reduction.  Non-comparison semirings and non-float dtypes
fall back to the tiled NumPy path (inherited via ``CompiledBackend``),
so the backend is total over ``SEMIRINGS``.

Like ``compiled``, this is a *soft* dependency: without numba the
backend registers with ``available = False`` and a reason string.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..minplus import MIN_PLUS, Semiring
from .base import validate_accumulate
from .compiled import HAVE_NUMBA, _OPCODES, CompiledBackend

__all__ = ["MultiStageBackend"]

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    import numba

_jit_rowpar: Optional[Callable] = None


def _build_rowpar_kernel():  # pragma: no cover - requires numba
    """Compile the row-parallel panel/outer kernel once, lazily."""
    global _jit_rowpar
    if _jit_rowpar is not None:
        return _jit_rowpar

    @numba.njit(cache=True, parallel=True, fastmath={"contract"})
    def rowpar(c, a, b, op):
        m, k = a.shape
        n = b.shape[1]
        for i in numba.prange(m):
            for t in range(k):
                ait = a[i, t]
                for j in range(n):
                    if op == 0:
                        cand = ait + b[t, j]
                        if cand < c[i, j]:
                            c[i, j] = cand
                    elif op == 1:
                        cand = ait + b[t, j]
                        if cand > c[i, j]:
                            c[i, j] = cand
                    elif op == 2:
                        cand = ait if ait < b[t, j] else b[t, j]
                        if cand > c[i, j]:
                            c[i, j] = cand
                    else:
                        cand = ait if ait > b[t, j] else b[t, j]
                        if cand < c[i, j]:
                            c[i, j] = cand

    _jit_rowpar = rowpar
    return rowpar


class MultiStageBackend(CompiledBackend):
    """numba multi-stage kernels: serial diag, row-parallel panel/outer."""

    def __init__(self, byte_budget: Optional[int] = None):
        super().__init__(byte_budget=byte_budget)
        self.name = "compiled-ms"

    def _rowpar_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring,
        k_chunk: Optional[int],
    ) -> Optional[np.ndarray]:
        op = _OPCODES.get(semiring.name)
        if op is None or c.dtype.kind != "f" or not HAVE_NUMBA:
            return None
        validate_accumulate(c, a, b)
        if a.shape[1] == 0 or c.size == 0:
            return c
        kernel = _build_rowpar_kernel()
        kernel(c, np.ascontiguousarray(a), np.ascontiguousarray(b), op)
        return c

    # diag: inherit CompiledBackend.srgemm_accumulate via the base
    # srgemm_diag default - the serial fused kernel *is* the diag stage.

    def srgemm_panel(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        out = self._rowpar_accumulate(c, a, b, semiring, k_chunk)
        if out is not None:
            return out
        return super().srgemm_panel(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_outer(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        out = self._rowpar_accumulate(c, a, b, semiring, k_chunk)
        if out is not None:
            return out
        return super().srgemm_outer(c, a, b, semiring=semiring, k_chunk=k_chunk)

    def describe(self) -> str:
        return (
            "numba multi-stage kernels (serial diag, prange panel/outer, "
            f"fastmath=contract only); {super().describe()}"
        )

