"""Tropical (min,+) semiring algebra and SrGemm kernels.

This subpackage is the numerical heart of the reproduction: the
semiring abstraction (paper §2.3), the SrGemm matrix-product kernels
the GPU model executes (paper §2.6/§4.1), Floyd-Warshall on one block,
and the closure-by-squaring DiagUpdate (paper Eq. 4).
"""

from .backends import (
    KernelBackend,
    available_backends,
    get_backend,
    registered_backends,
    set_default_backend,
    tune_kernel_tiling,
    use_backend,
)
from .closure import (
    check_no_negative_cycle,
    closure_by_squaring,
    dc_floyd_warshall,
    floyd_warshall,
    fw_inplace,
    squaring_steps,
)
from .kernels import (
    DEFAULT_K_CHUNK,
    eltwise_plus,
    panel_col_update,
    panel_row_update,
    srgemm,
    srgemm_accumulate,
    srgemm_diag,
    srgemm_flops,
    srgemm_outer,
    srgemm_panel,
)
from .path_kernels import (
    NO_HOP,
    fw_inplace_paths,
    init_next_hops,
    srgemm_accumulate_paths,
)
from .minplus import (
    INF,
    MAX_MIN,
    MAX_PLUS,
    MIN_MAX,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    SEMIRINGS,
    Semiring,
    weight_matrix_is_valid,
)

__all__ = [
    "INF",
    "Semiring",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_MIN",
    "MIN_MAX",
    "OR_AND",
    "PLUS_TIMES",
    "SEMIRINGS",
    "weight_matrix_is_valid",
    "srgemm",
    "srgemm_accumulate",
    "srgemm_diag",
    "srgemm_panel",
    "srgemm_outer",
    "srgemm_flops",
    "eltwise_plus",
    "panel_row_update",
    "panel_col_update",
    "DEFAULT_K_CHUNK",
    "fw_inplace",
    "floyd_warshall",
    "closure_by_squaring",
    "squaring_steps",
    "check_no_negative_cycle",
    "dc_floyd_warshall",
    "NO_HOP",
    "init_next_hops",
    "srgemm_accumulate_paths",
    "fw_inplace_paths",
    "KernelBackend",
    "get_backend",
    "set_default_backend",
    "use_backend",
    "registered_backends",
    "available_backends",
    "tune_kernel_tiling",
]
