"""Semiring definitions, with the tropical (min,+) semiring as default.

The paper computes APSP as the matrix closure of the weight matrix over
the tropical semiring (its §2.3): ``x ⊕ y = min(x, y)`` and
``x ⊗ y = x + y``, with ``⊕``-identity ``+inf`` and ``⊗``-identity
``0``.  The cuASR kernel the paper builds on supports other semirings
too, so we expose a small generic :class:`Semiring` abstraction and
ship the common instances; everything in :mod:`repro.semiring.kernels`
is generic over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "INF",
    "Semiring",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_MIN",
    "MIN_MAX",
    "OR_AND",
    "PLUS_TIMES",
    "SEMIRINGS",
    "weight_matrix_is_valid",
]

#: Additive identity of the (min,+) semiring: "no path".
INF = np.inf


@dataclass(frozen=True)
class Semiring:
    """A matrix-multiplication-compatible semiring ``(S, ⊕, ⊗, 0̄, 1̄)``.

    Attributes
    ----------
    name:
        Human-readable identifier (also the registry key).
    plus:
        The ``⊕`` operator as a binary NumPy ufunc (must be
        associative, commutative, idempotent not required).
    times:
        The ``⊗`` operator as a binary NumPy ufunc.
    zero:
        The ``⊕`` identity, which must annihilate under ``⊗``.
    one:
        The ``⊗`` identity.
    dtype:
        Preferred NumPy dtype (the paper's kernels are single
        precision; we default to float64 for test fidelity and let
        callers downcast).
    idempotent_plus:
        True when ``x ⊕ x = x``; this is what makes repeated squaring
        converge to the closure (paper Eq. 4) and lets blocked
        algorithms apply updates more than once without harm.
    """

    name: str
    plus: Callable[..., np.ndarray]
    times: Callable[..., np.ndarray]
    zero: float
    one: float
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    idempotent_plus: bool = True

    def eye(self, n: int, dtype: np.dtype | None = None) -> np.ndarray:
        """The ``n x n`` multiplicative identity matrix (1̄ on the
        diagonal, 0̄ elsewhere).  For (min,+) this is 0-diagonal/inf."""
        out = np.full((n, n), self.zero, dtype=dtype or self.dtype)
        np.fill_diagonal(out, self.one)
        return out

    def zeros(self, shape: tuple[int, ...], dtype: np.dtype | None = None) -> np.ndarray:
        """A matrix of ``⊕`` identities ("empty" distance matrix)."""
        return np.full(shape, self.zero, dtype=dtype or self.dtype)

    def plus_reduce(self, arr: np.ndarray, axis: int) -> np.ndarray:
        """``⊕``-reduction along an axis (min for the tropical case)."""
        return self.plus.reduce(arr, axis=axis)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Semiring({self.name})"


#: Tropical / shortest-path semiring: the paper's subject.
MIN_PLUS = Semiring("min_plus", np.minimum, np.add, zero=INF, one=0.0)

#: Critical path / longest path (on DAGs) semiring.
MAX_PLUS = Semiring("max_plus", np.maximum, np.add, zero=-INF, one=0.0)

#: Bottleneck / maximum-capacity-path semiring.
MAX_MIN = Semiring("max_min", np.maximum, np.minimum, zero=-INF, one=INF)

#: Minimax / minimum-of-maximum-edge paths (e.g. minimum spanning
#: bottleneck distances).
MIN_MAX = Semiring("min_max", np.minimum, np.maximum, zero=INF, one=-INF)

#: Boolean reachability semiring (transitive closure).
OR_AND = Semiring(
    "or_and",
    np.logical_or,
    np.logical_and,
    zero=False,
    one=True,
    dtype=np.dtype(np.bool_),
)

#: The ordinary ring of reals; not idempotent.  Useful to cross-check
#: the generic kernels against ``np.matmul``.
PLUS_TIMES = Semiring(
    "plus_times", np.add, np.multiply, zero=0.0, one=1.0, idempotent_plus=False
)

SEMIRINGS: dict[str, Semiring] = {
    sr.name: sr for sr in (MIN_PLUS, MAX_PLUS, MAX_MIN, MIN_MAX, OR_AND, PLUS_TIMES)
}


def weight_matrix_is_valid(w: np.ndarray, semiring: Semiring = MIN_PLUS) -> bool:
    """Check that ``w`` is a square 2-D array usable as a distance/weight
    matrix for the given semiring (no NaNs; -inf forbidden for
    (min,+) since it encodes an infinitely-negative edge)."""
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        return False
    if np.isnan(w).any():
        return False
    if semiring is MIN_PLUS and np.isneginf(w).any():
        return False
    return True
