"""Discrete-event simulation engine.

A small, deterministic, SimPy-like kernel that the rest of the package
builds on.  Simulated actors (MPI ranks, CUDA streams, the host CPU of a
node, ...) are ordinary Python generators that ``yield`` :class:`Event`
objects; the :class:`Environment` interleaves them in simulated time.

The engine is deliberately minimal but complete for our needs:

* :class:`Event` - one-shot events carrying a value or an exception.
* :class:`Timeout` - an event that fires after a simulated delay.
* :class:`Process` - wraps a generator; is itself an event that fires
  when the generator returns (its value is the generator's return value).
* :class:`AllOf` / :class:`AnyOf` - event combinators used to express
  overlap ("wait for the broadcast *and* the outer product").

Determinism matters: two runs of the same program must produce identical
event orderings so tests and benchmarks are reproducible.  The run queue
breaks time ties by (priority, sequence number), where the sequence
number is allocated at schedule time.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for control events that must run before same-time
#: ordinary events (e.g. resuming a process that was just granted a
#: resource).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel itself."""


class Interrupt(Exception):
    """Thrown into a process that gets interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; it is *triggered* once :meth:`succeed` or
    :meth:`fail` is called, and *processed* once the environment has run
    its callbacks.  Processes waiting on the event are resumed with the
    event's value (or have the failure exception thrown into them).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: A failed event whose failure was consumed (e.g. by a waiting
        #: process) will not crash the simulation at the top level.
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("value of untriggered event is not available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority=NORMAL)
        return self

    def defuse(self) -> None:
        """Declare this event's (current or future) failure handled.

        An unwaited-for failed event aborts the simulation when
        processed; a supervisor that deliberately kills a process (e.g.
        the crash-recovery driver interrupting stray relay sends) calls
        this so the induced failure does not take the run down with it.
        """
        self._defused = True

    def _mark_processed(self) -> None:
        self._processed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, priority=NORMAL, delay=delay)


class _Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        self._ok = True
        self._value = None
        env._schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator so the environment can step it.

    The process is itself an :class:`Event` that triggers when the
    generator returns; the event value is the generator's return value
    (``StopIteration.value``).  If the generator raises, the process
    fails with that exception, which propagates to anything waiting on
    it (or aborts the simulation if nothing is).
    """

    __slots__ = ("_generator", "_target", "name", "scope")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
        scope: Any = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Opaque ownership tag (e.g. the scheduler's Job).  Inherited
        #: from the spawning process so every helper process a job
        #: creates (isend relays, stream ops, watchdogs) carries its
        #: job's identity down to the resource arbiters.  ``None`` for
        #: single-owner simulations - the historical behavior.
        if scope is None and env._active_process is not None:
            scope = env._active_process.scope
        self.scope = scope
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process must be alive and not waiting on itself.
        """
        if self._triggered:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._resume_interrupt)
        interrupt_event._triggered = True
        interrupt_event._ok = True
        interrupt_event._value = cause
        self.env._schedule(interrupt_event, priority=URGENT)

    # -- stepping ----------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        self._step(throw=Interrupt(event._value))

    def _resume(self, event: Event) -> None:
        if event._ok:
            self._step(send=event._value)
        else:
            event._defused = True
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        self._target = None
        env = self.env
        env._active_process = self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            env._active_process = None
            self._triggered = True
            self._ok = True
            self._value = stop.value
            env._schedule(self, priority=NORMAL)
            return
        except BaseException as exc:
            env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            env._schedule(self, priority=NORMAL)
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}; "
                "did you forget `yield from` for a sub-routine?"
            )
        if target.callbacks is None:
            # Already processed: resume immediately (keeps same-time
            # semantics without re-dispatch through the queue).
            if target._ok:
                self._step(send=target._value)
            else:
                target._defused = True
                self._step(throw=target._value)
            return
        target.callbacks.append(self._resume)
        self._target = target


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`.

    An event counts as *done* once it has been processed (its
    callbacks have run), not merely created-triggered - a Timeout is
    "triggered" from birth but must still wait its delay.
    """

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._done = 0
        failed = None
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                if not ev._ok:
                    ev._defused = True
                    failed = failed or ev._value
                else:
                    self._done += 1
            else:
                ev.callbacks.append(self._check)
        if failed is not None:
            self.fail(failed)
        elif self._satisfied():
            self.succeed(self._result())

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._result())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _result(self) -> Any:
        return [
            ev._value
            for ev in self._events
            if ev.callbacks is None and ev._triggered and ev._ok
        ]


class AllOf(_Condition):
    """Triggers when *all* constituent events have been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done == len(self._events)


class AnyOf(_Condition):
    """Triggers when *any* constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1 or not self._events


class Environment:
    """The simulation environment: clock plus run queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds, by package convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: Optional[str] = None, scope: Any = None
    ) -> Process:
        return Process(self, generator, name=name, scope=scope)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when drained."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:  # type: ignore[union-attr]
            callback(event)
        event._mark_processed()
        if not event._ok and not event._defused:
            raise event._value  # unhandled failure aborts the run

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), a time, or an
        :class:`Event` (run until it is processed and return its value;
        raise if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while self._queue:
                if sentinel._processed:
                    break
                self.step()
            if not sentinel._triggered:
                raise SimulationError(
                    f"run(until={sentinel!r}) finished with the event never triggered; deadlock?"
                )
            if not sentinel._ok:
                sentinel._defused = True
                raise sentinel._value
            return sentinel._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self.peek() <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None
