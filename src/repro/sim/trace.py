"""Execution tracing for simulated runs.

The tracer records *spans* - (actor, category, label, t_start, t_end) -
and scalar counters.  It backs three consumers:

* the per-run :class:`~repro.core.report.PerfReport` (time per kernel
  category, communication volume, overlap fraction);
* the text Gantt renderer used by ``examples/pipeline_timeline.py`` and
  ``benchmarks/bench_fig2_pipeline_timeline.py`` to reproduce the
  paper's Figure 2 schedule;
* assertions in tests ("d2hXfer of tile t overlaps SrGemm of tile t+1").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["Span", "Tracer", "ScopedTracer", "render_gantt", "OP_CATEGORY_PREFIX"]

#: Category prefix of task-level spans the schedule executor records -
#: one span per IR op that consumed simulated time (category
#: ``op:DiagUpdate``, ``op:PanelBcast``, ...), keyed by ``rank<i>``
#: actors.  Coarser than the per-kernel/engine spans, these give the
#: per-op timeline of a rank program (paper Fig. 2 granularity).
OP_CATEGORY_PREFIX = "op:"


@dataclass(frozen=True)
class Span:
    """A closed interval of simulated time attributed to an actor."""

    actor: str
    category: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True if the two spans share a positive-length interval."""
        return min(self.end, other.end) > max(self.start, other.start)


class Tracer:
    """Collects spans and counters during a simulated run.

    Tracing is optional everywhere: call sites accept ``tracer=None``
    and the disabled path costs one ``if``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []
        self.counters: dict[str, float] = defaultdict(float)

    def record(self, actor: str, category: str, label: str, start: float, end: float) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span ends before it starts: {label} [{start}, {end}]")
        self.spans.append(Span(actor, category, label, start, end))

    def add(self, counter: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.counters[counter] += amount

    # -- queries -----------------------------------------------------------
    def spans_by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def spans_by_actor(self, actor: str) -> list[Span]:
        return [s for s in self.spans if s.actor == actor]

    def op_spans(self, op: Optional[str] = None, actor: Optional[str] = None) -> list[Span]:
        """Task-level schedule-IR spans (categories ``op:*``), optionally
        restricted to one op name (e.g. ``"OuterUpdate"``) and/or one
        actor (e.g. ``"rank0"``)."""
        want = None if op is None else OP_CATEGORY_PREFIX + op
        return [
            s
            for s in self.spans
            if s.category.startswith(OP_CATEGORY_PREFIX)
            and (want is None or s.category == want)
            and (actor is None or s.actor == actor)
        ]

    def actors(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.actor, None)
        return list(seen)

    def total_time(self, category: str, actor: Optional[str] = None) -> float:
        """Sum of span durations in a category (per actor if given)."""
        return sum(
            s.duration
            for s in self.spans
            if s.category == category and (actor is None or s.actor == actor)
        )

    def busy_time(self, actor: str, categories: Optional[Iterable[str]] = None) -> float:
        """Length of the union of the actor's span intervals.

        Unlike :meth:`total_time` this does not double-count overlapped
        spans, so ``busy_time <= makespan`` always holds.
        """
        cats = set(categories) if categories is not None else None
        intervals = sorted(
            (s.start, s.end)
            for s in self.spans
            if s.actor == actor and (cats is None or s.category in cats)
        )
        busy = 0.0
        cur_start, cur_end = None, None
        for start, end in intervals:
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    busy += cur_end - cur_start  # type: ignore[operator]
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            busy += cur_end - cur_start  # type: ignore[operator]
        return busy

    def overlap_time(self, category_a: str, category_b: str) -> float:
        """Total simulated time during which some span of ``category_a``
        runs concurrently with some span of ``category_b``.

        Computed on the union-intervals of each category, so nested or
        duplicated spans are not double counted.  This is the number
        behind statements like "communication is hidden behind the
        outer product".
        """

        def union(cat: str) -> list[tuple[float, float]]:
            ivs = sorted((s.start, s.end) for s in self.spans if s.category == cat)
            merged: list[tuple[float, float]] = []
            for start, end in ivs:
                if merged and start <= merged[-1][1]:
                    merged[-1] = (merged[-1][0], max(merged[-1][1], end))
                else:
                    merged.append((start, end))
            return merged

        a, b = union(category_a), union(category_b)
        i = j = 0
        overlap = 0.0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if hi > lo:
                overlap += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return overlap

    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def event_digest(self) -> str:
        """A byte-exact fingerprint of the recorded event ordering.

        Spans are serialized in *recording order* with full float
        precision, so two runs produce the same digest iff they
        recorded the same spans in the same order - the determinism
        contract the fault-injection suite pins (same seed + same
        FaultPlan ⇒ identical event ordering).
        """
        import hashlib

        h = hashlib.sha256()
        for s in self.spans:
            h.update(
                f"{s.actor}|{s.category}|{s.label}|{s.start!r}|{s.end!r}\n".encode()
            )
        for key in sorted(self.counters):
            h.update(f"{key}={self.counters[key]!r}\n".encode())
        return h.hexdigest()


class ScopedTracer:
    """A write view onto a shared :class:`Tracer` that prefixes actors.

    The cluster scheduler gives each job a ``ScopedTracer(fleet, "job3.")``
    so concurrent jobs land in one fleet trace as distinct Perfetto
    lanes (``job3.rank0``, ``job3.gpu0.kernel``, ...) while counters get
    the same prefix for per-job attribution.  Reads (queries, digests)
    go through the underlying fleet tracer.
    """

    def __init__(self, inner: Tracer, prefix: str):
        self.inner = inner
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    def record(self, actor: str, category: str, label: str, start: float, end: float) -> None:
        self.inner.record(self.prefix + actor, category, label, start, end)

    def add(self, counter: str, amount: float = 1.0) -> None:
        self.inner.add(self.prefix + counter, amount)

    # -- scoped read views ---------------------------------------------------
    # Per-job report assembly reads ``counters``/``spans`` exactly like a
    # private Tracer; these return only this job's slice, de-prefixed.
    @property
    def counters(self) -> dict[str, float]:
        p = self.prefix
        return {
            k[len(p):]: v for k, v in self.inner.counters.items() if k.startswith(p)
        }

    @property
    def spans(self) -> list[Span]:
        p = self.prefix
        return [
            Span(s.actor[len(p):], s.category, s.label, s.start, s.end)
            for s in self.inner.spans
            if s.actor.startswith(p)
        ]

    def total_time(self, category: str, actor: Optional[str] = None) -> float:
        return Tracer.total_time(self, category, actor)  # type: ignore[arg-type]

    def busy_time(self, actor: str, categories: Optional[Iterable[str]] = None) -> float:
        return Tracer.busy_time(self, actor, categories)  # type: ignore[arg-type]


def render_gantt(
    tracer: Tracer,
    width: int = 100,
    actors: Optional[list[str]] = None,
    glyphs: Optional[dict[str, str]] = None,
) -> str:
    """Render the trace as a fixed-width text Gantt chart.

    One row per actor; each span paints the glyph of its category
    (first letter by default) over its time extent.  Later spans paint
    over earlier ones, and a collision of two *different* categories in
    one cell shows ``#`` (a visual cue of overlap inside one actor).
    """
    if not tracer.spans:
        return "(empty trace)"
    t0 = min(s.start for s in tracer.spans)
    t1 = max(s.end for s in tracer.spans)
    extent = max(t1 - t0, 1e-30)
    rows = actors if actors is not None else tracer.actors()
    glyphs = glyphs or {}
    name_w = max(len(a) for a in rows)
    lines = [
        f"{'actor'.ljust(name_w)} | t0={t0:.6g}s .. t1={t1:.6g}s "
        f"(1 col = {extent / width:.3g}s)"
    ]
    for actor in rows:
        cells = [" "] * width
        for span in tracer.spans_by_actor(actor):
            glyph = glyphs.get(span.category, span.category[:1].upper() or "?")
            lo = int((span.start - t0) / extent * width)
            hi = int((span.end - t0) / extent * width)
            hi = max(hi, lo + 1)
            for c in range(lo, min(hi, width)):
                if cells[c] not in (" ", glyph):
                    cells[c] = "#"
                else:
                    cells[c] = glyph
        lines.append(f"{actor.ljust(name_w)} |{''.join(cells)}|")
    legend = sorted({s.category for s in tracer.spans})
    lines.append(
        "legend: "
        + ", ".join(f"{glyphs.get(c, c[:1].upper() or '?')}={c}" for c in legend)
        + ", #=overlap"
    )
    return "\n".join(lines)
