"""Deterministic discrete-event simulation kernel.

This subpackage is the substrate everything else runs on: a SimPy-like
event engine (:mod:`repro.sim.engine`), shared-resource primitives
(:mod:`repro.sim.resources`) and execution tracing
(:mod:`repro.sim.trace`).
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import FilterStore, Request, Resource, Store
from .trace import ScopedTracer, Span, Tracer, render_gantt

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "FilterStore",
    "Request",
    "Resource",
    "Store",
    "ScopedTracer",
    "Span",
    "Tracer",
    "render_gantt",
]
