"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the machine model needs:

* :class:`Resource` - a counted resource with a FIFO wait queue.  A NIC,
  a GPU's kernel engine, a host memory-bandwidth channel: anything where
  concurrent users must serialize.
* :class:`Store` - an unbounded FIFO of Python objects with blocking
  ``get``.  Message queues between simulated MPI ranks are stores.
* :class:`FilterStore` - a store whose ``get`` takes a predicate, used
  for MPI tag/source matching.

All primitives are strictly FIFO among equally-eligible requests, which
keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "FilterStore"]


class Request(Event):
    """Event granted when the requesting process acquires the resource."""

    __slots__ = ("resource", "scope")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        active = resource.env.active_process
        #: Ownership tag of the requesting process (see Process.scope);
        #: arbiters use it to pick whose queued request is granted next.
        self.scope = getattr(active, "scope", None)


class Resource:
    """A counted resource with FIFO admission.

    Usage from a process generator::

        req = nic.request()
        yield req
        yield env.timeout(transfer_time)
        nic.release(req)

    or, equivalently, via the :meth:`use` helper::

        yield from nic.use(transfer_time)
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()
        #: Cumulative simulated time-integral of queue length; used by the
        #: trace layer to report contention.
        self.total_wait_time = 0.0
        #: Cumulative simulated time this resource was held (per holder);
        #: fleet utilization = busy / (capacity * makespan).
        self.total_busy_time = 0.0
        #: Optional queue arbiter (see repro.sched.arbiter).  ``None``
        #: keeps the historical strict-FIFO grant order, which the
        #: single-job exactness recordings pin.
        self.arbiter = None

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request not in self._users:
            raise SimulationError(f"release of {request!r} that does not hold {self.name}")
        self._users.discard(request)
        while self._waiting and len(self._users) < self.capacity:
            if self.arbiter is None:
                nxt = self._waiting.popleft()
            else:
                nxt = self.arbiter.select(self._waiting)
                self._waiting.remove(nxt)
            self._users.add(nxt)
            nxt.succeed()

    def cancel(self, request: Request) -> None:
        """Withdraw a request, whatever its state.

        Safe to call from an exception path: a queued request is
        removed from the wait queue, a granted one is released, and a
        request already withdrawn is ignored.  Without this, a process
        interrupted while waiting on (or holding) the resource would
        leak a slot and eventually wedge every later user - exactly
        the hazard of crashing a rank mid-transfer.
        """
        if request in self._users:
            self.release(request)
            return
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def use(self, duration: float):
        """Generator helper: acquire, hold for ``duration``, release.

        Returns the simulated time at which the resource was acquired,
        so callers can measure queueing delay.  Interrupt-safe: an
        exception thrown into the generator at any point (e.g. a rank
        crash) withdraws the request instead of leaking the slot.
        """
        req = self.request()
        t_asked = self.env.now
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise
        t_got = self.env.now
        self.total_wait_time += t_got - t_asked
        if self.arbiter is not None and req.scope is not None:
            self.arbiter.charge(req.scope, duration)
        try:
            yield self.env.timeout(duration)
        finally:
            self.total_busy_time += self.env.now - t_got
            self.release(req)
        return t_got

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Resource {self.name} {self.count}/{self.capacity} (+{self.queue_len} waiting)>"


class _StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, env: Environment, filt: Optional[Callable[[Any], bool]] = None):
        super().__init__(env)
        self.filter = filt


class Store:
    """Unbounded FIFO store with blocking ``get``.

    ``put`` never blocks (message queues in our MPI model are unbounded;
    flow control happens at the NIC resource instead).
    """

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self.items: deque[Any] = deque()
        self._getters: deque[_StoreGet] = deque()

    def put(self, item: Any) -> None:
        self.items.append(item)
        self._dispatch()

    def get(self) -> Event:
        ev = _StoreGet(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def cancel(self, getter: Event) -> None:
        """Withdraw a pending ``get`` (e.g. when a receive times out).

        A getter that already matched (or was never issued here) is
        ignored, so the call is safe from any cleanup path.
        """
        try:
            self._getters.remove(getter)  # type: ignore[arg-type]
        except ValueError:
            pass

    def reset(self) -> None:
        """Drop all queued items and pending getters.

        Used by crash recovery to discard in-flight messages and
        abandoned receives before a world restarts from a checkpoint.
        """
        self.items.clear()
        self._getters.clear()

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters[0]
            matched = self._match(getter)
            if matched is _NO_MATCH:
                break
            self._getters.popleft()
            getter.succeed(matched)

    def _match(self, getter: _StoreGet) -> Any:
        if not self.items:
            return _NO_MATCH
        return self.items.popleft()

    def __len__(self) -> int:
        return len(self.items)


class _NoMatch:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<NO_MATCH>"


_NO_MATCH = _NoMatch()


class FilterStore(Store):
    """A store whose ``get`` can carry a predicate.

    Unlike the plain :class:`Store`, *all* pending getters are examined
    on every put, because a newly arrived item may satisfy a getter that
    is not at the head of the queue (MPI tag matching needs this).
    Among getters whose predicate matches, FIFO order is preserved.
    """

    def get(self, filt: Optional[Callable[[Any], bool]] = None) -> Event:
        ev = _StoreGet(self.env, filt)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for getter in list(self._getters):
                matched = self._match(getter)
                if matched is _NO_MATCH:
                    continue
                self._getters.remove(getter)
                getter.succeed(matched)
                progress = True
                break

    def _match(self, getter: _StoreGet) -> Any:
        for idx, item in enumerate(self.items):
            if getter.filter is None or getter.filter(item):
                del self.items[idx]
                return item
        return _NO_MATCH
