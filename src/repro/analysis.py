"""Graph analytics on APSP output.

The paper's motivation is analytics ("relationship mining problems
become computing Apsp in a large and dense graph"); this module is the
consumer side: metrics computed from a distance matrix (as returned by
:func:`repro.apsp`), vectorized and oracle-tested against networkx.

All functions take the dense ``dist`` matrix (``inf`` = unreachable,
zero diagonal) and treat the graph as directed unless noted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .errors import ValidationError
from .semiring.minplus import INF

__all__ = [
    "eccentricity",
    "diameter",
    "radius",
    "graph_center",
    "graph_periphery",
    "closeness_centrality",
    "harmonic_centrality",
    "average_path_length",
    "reachability_components",
    "hop_counts",
    "DistanceSummary",
    "summarize",
]


def _check(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValidationError(f"distance matrix must be square, got {dist.shape}")
    return dist


def eccentricity(dist: np.ndarray) -> np.ndarray:
    """Per-vertex eccentricity: the farthest *reachable* vertex's
    distance (inf if the vertex reaches nothing but itself)."""
    dist = _check(dist)
    n = dist.shape[0]
    masked = np.where(np.isfinite(dist), dist, -np.inf)
    np.fill_diagonal(masked, -np.inf)
    ecc = masked.max(axis=1)
    return np.where(np.isneginf(ecc), INF, ecc)


def diameter(dist: np.ndarray, require_connected: bool = False) -> float:
    """Largest finite shortest-path distance.

    With ``require_connected`` the presence of any unreachable pair
    raises instead (networkx semantics for disconnected graphs)."""
    dist = _check(dist)
    off = ~np.eye(dist.shape[0], dtype=bool)
    if require_connected and not np.isfinite(dist[off]).all():
        raise ValidationError("graph is not strongly connected; diameter is infinite")
    finite = dist[off & np.isfinite(dist)]
    return float(finite.max()) if finite.size else 0.0


def radius(dist: np.ndarray) -> float:
    """Minimum eccentricity over vertices with finite eccentricity."""
    ecc = eccentricity(dist)
    finite = ecc[np.isfinite(ecc)]
    return float(finite.min()) if finite.size else INF


def graph_center(dist: np.ndarray) -> np.ndarray:
    """Vertices whose eccentricity equals the radius."""
    ecc = eccentricity(dist)
    r = radius(dist)
    if np.isinf(r):
        return np.array([], dtype=np.int64)
    return np.flatnonzero(np.isclose(ecc, r))


def graph_periphery(dist: np.ndarray) -> np.ndarray:
    """Vertices whose eccentricity equals the (finite) diameter."""
    ecc = eccentricity(dist)
    d = diameter(dist)
    return np.flatnonzero(np.isclose(ecc, d))


def closeness_centrality(dist: np.ndarray, wf_improved: bool = True) -> np.ndarray:
    """Closeness centrality of each vertex from *incoming* distances,
    matching ``networkx.closeness_centrality`` on the same digraph
    (networkx uses distances *to* the node; Wasserman-Faust scaling by
    the reachable fraction when ``wf_improved``)."""
    dist = _check(dist)
    n = dist.shape[0]
    incoming = dist.T  # incoming[v, u] = d(u -> v)
    finite = np.isfinite(incoming) & ~np.eye(n, dtype=bool)
    reach = finite.sum(axis=1)
    totals = np.where(finite, incoming, 0.0).sum(axis=1)
    out = np.zeros(n)
    nonzero = totals > 0
    out[nonzero] = reach[nonzero] / totals[nonzero]
    if wf_improved and n > 1:
        out *= reach / (n - 1)
    return out


def harmonic_centrality(dist: np.ndarray) -> np.ndarray:
    """Harmonic centrality from incoming distances: Σ 1/d(u, v) over
    u ≠ v (unreachable pairs contribute 0), as in networkx."""
    dist = _check(dist)
    n = dist.shape[0]
    incoming = dist.T
    with np.errstate(divide="ignore"):
        inv = np.where(
            np.isfinite(incoming) & (incoming > 0), 1.0 / incoming, 0.0
        )
    np.fill_diagonal(inv, 0.0)
    return inv.sum(axis=1)


def average_path_length(dist: np.ndarray) -> float:
    """Mean finite shortest-path distance over ordered pairs u ≠ v."""
    dist = _check(dist)
    off = ~np.eye(dist.shape[0], dtype=bool)
    finite = dist[off & np.isfinite(dist)]
    return float(finite.mean()) if finite.size else 0.0


def reachability_components(dist: np.ndarray) -> np.ndarray:
    """Strongly connected component labels from mutual reachability
    (u, v in one SCC iff d(u,v) and d(v,u) both finite).  Labels are
    dense ints ordered by smallest member."""
    dist = _check(dist)
    n = dist.shape[0]
    mutual = np.isfinite(dist) & np.isfinite(dist.T)
    np.fill_diagonal(mutual, True)
    labels = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if labels[v] == -1:
            members = np.flatnonzero(mutual[v])
            labels[members] = nxt
            nxt += 1
    return labels


def hop_counts(next_hops: np.ndarray) -> np.ndarray:
    """Edge counts of the shortest paths encoded by a next-hop matrix
    (as produced by ``apsp(..., track_paths=True)`` or
    :func:`repro.extensions.floyd_warshall_with_paths`); -1 where
    unreachable, 0 on the diagonal."""
    nxt = np.asarray(next_hops)
    n = nxt.shape[0]
    hops = np.full((n, n), -1, dtype=np.int64)
    np.fill_diagonal(hops, 0)
    # Propagate: hops[i, j] = 1 + hops[nxt[i, j], j]; iterate until
    # fixed point (bounded by the longest path, <= n - 1 edges).
    for _ in range(n):
        unknown = (hops < 0) & (nxt >= 0)
        if not unknown.any():
            break
        rows, cols = np.nonzero(unknown)
        via = nxt[rows, cols]
        known = hops[via, cols] >= 0
        hops[rows[known], cols[known]] = 1 + hops[via[known], cols[known]]
    return hops


@dataclass(frozen=True)
class DistanceSummary:
    """One-call descriptive statistics of an APSP result."""

    n: int
    reachable_pairs: int
    components: int
    diameter: float
    radius: float
    average_distance: float
    center: tuple[int, ...]
    periphery: tuple[int, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} pairs={self.reachable_pairs} comps={self.components} "
            f"diam={self.diameter:.4g} rad={self.radius:.4g} "
            f"avg={self.average_distance:.4g}"
        )


def summarize(dist: np.ndarray) -> DistanceSummary:
    """Compute the standard descriptive metrics in one pass."""
    dist = _check(dist)
    n = dist.shape[0]
    off = ~np.eye(n, dtype=bool)
    return DistanceSummary(
        n=n,
        reachable_pairs=int((np.isfinite(dist) & off).sum()),
        components=int(reachability_components(dist).max() + 1) if n else 0,
        diameter=diameter(dist),
        radius=radius(dist),
        average_distance=average_path_length(dist),
        center=tuple(int(v) for v in graph_center(dist)),
        periphery=tuple(int(v) for v in graph_periphery(dist)),
    )
