"""The shared-cluster job scheduler.

One :class:`ClusterScheduler` owns one simulated machine
(:class:`~repro.core.driver.MachineHandles`) and runs N submitted jobs
*concurrently on it*: every job gets a private MPI world and solver
context, but GPUs, NICs and intranode channels are the same simulated
resources, so contention, queueing and interference emerge from the
simulation instead of being assumed.

The moving parts:

* **admission** (:mod:`repro.sched.admission`) - jobs are priced from
  their resolved :class:`~repro.core.driver.RunPlan` and either
  admitted, queued until capacity frees, or rejected
  (:class:`~repro.errors.AdmissionError`);
* **arbitration** (:mod:`repro.sched.arbiter`) - contended resources
  grant by priority-weighted fair share instead of FIFO;
* **execution** (:mod:`repro.sched.runner`) - each admitted job is one
  supervised coroutine; failures are isolated per job;
* **observability** - fleet metrics (utilization, queue depth, per-job
  p50/p99 latency) in a :class:`~repro.obs.metrics.MetricsRegistry`,
  and job-tagged spans in one fleet tracer whose Chrome-trace export
  interleaves per-job Perfetto lanes (``jobA.rank0``,
  ``jobB.node0.gpu0.kernel``, ...).

Degenerate schedules are exact: submitting a single job reproduces the
unscheduled engine event-for-event - same distance bits, same makespan
(pinned against the recorded values in ``tests/test_sched.py``).

Typical use::

    from repro.sched import ClusterScheduler

    sched = ClusterScheduler(n_nodes=2)
    a = sched.submit(w1, variant="async", block_size=5, name="tenantA",
                     priority=1, n_nodes=2, ranks_per_node=3)
    b = sched.submit(w2, variant="offload", block_size=8, name="tenantB",
                     n_nodes=2, ranks_per_node=3)
    sched.run()
    print(a.report().elapsed, b.report().elapsed)
    print(sched.fleet_metrics().flat()["fleet.gpu.utilization"])
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api import SolveConfig, resolve_machine
from ..core.driver import MachineHandles, plan_run
from ..core.grid import ProcessGrid
from ..errors import AdmissionError, ConfigurationError, RankFailure
from .admission import AdmissionController, assess
from .arbiter import FairShareArbiter
from .job import Job, JobHandle, JobStatus
from .runner import job_process

__all__ = ["ClusterScheduler"]


class ClusterScheduler:
    """Admit, arbitrate and run jobs on one shared simulated cluster."""

    def __init__(
        self,
        machine="summit",
        n_nodes: int = 1,
        *,
        dim_scale: float = 1.0,
        trace: bool = False,
        makespan_limit: Optional[float] = None,
        failure_grace: float = 0.05,
    ):
        self.machine = resolve_machine(machine)
        self.n_nodes = n_nodes
        self.dim_scale = dim_scale
        self.handles = MachineHandles.create(
            self.machine, n_nodes, dim_scale=dim_scale, trace=trace
        )
        #: Simulated seconds between a job's first rank failure and the
        #: reaper interrupting its still-blocked ranks (see runner).
        self.failure_grace = failure_grace
        self.arbiter = FairShareArbiter()
        for node in self.handles.cluster.nodes:
            node.nic_tx.arbiter = self.arbiter
            node.intra_channel.arbiter = self.arbiter
            node.host.dram.arbiter = self.arbiter
            for gpu in node.gpus:
                gpu.kernel_engine.arbiter = self.arbiter
                gpu.h2d_engine.arbiter = self.arbiter
                gpu.d2h_engine.arbiter = self.arbiter
        self.admission = AdmissionController(
            self.machine, n_nodes, self.handles.cost, makespan_limit
        )
        from ..obs import MetricsRegistry

        self.obs = MetricsRegistry()
        self.jobs: list[Job] = []
        self._queue: list[Job] = []
        self._accounted: set[int] = set()
        self._next_id = 0

    # -- convenience views --------------------------------------------------
    @property
    def env(self):
        return self.handles.env

    @property
    def cluster(self):
        return self.handles.cluster

    @property
    def tracer(self):
        return self.handles.tracer

    # -- what-if (no graph required) ----------------------------------------
    def assess(self, n: float, n_nodes: Optional[int] = None,
               ranks_per_node: int = 12):
        """Shape-level feasibility + predicted makespan on this fleet's
        machine model (see :func:`repro.sched.admission.assess`)."""
        return assess(
            n,
            self.n_nodes if n_nodes is None else n_nodes,
            ranks_per_node,
            machine=self.machine,
            dim_scale=self.dim_scale,
        )

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        graph,
        config: Optional[SolveConfig] = None,
        *,
        name: Optional[str] = None,
        priority: int = 0,
        weight: float = 1.0,
        arrival: float = 0.0,
        **overrides,
    ) -> JobHandle:
        """Submit a job; returns a :class:`~repro.sched.job.JobHandle`.

        ``config``/``overrides`` carry the same vocabulary as
        :func:`repro.solve`.  ``arrival`` is the simulated time the job
        reaches the cluster (jobs with ``arrival <= now`` are admitted
        synchronously, so a lone immediate job lowers to the degenerate
        one-job schedule with zero scheduler events).  Configuration
        errors raise immediately; admission *rejections* come back as a
        REJECTED handle carrying an
        :class:`~repro.errors.AdmissionError` (exit code 15).
        """
        if config is None:
            config = SolveConfig()
        if not isinstance(config, SolveConfig):
            raise ConfigurationError(
                f"config must be a SolveConfig, got {type(config).__name__}"
            )
        if overrides:
            config = config.replace(**overrides)
        config.obs.validate()
        if resolve_machine(config.machine).name != self.machine.name:
            raise ConfigurationError(
                f"job machine {resolve_machine(config.machine).name!r} differs from "
                f"the fleet's {self.machine.name!r}; one scheduler = one machine model"
            )
        if config.dim_scale != self.dim_scale:
            raise ConfigurationError(
                f"job dim_scale {config.dim_scale} differs from the fleet's "
                f"{self.dim_scale}; virtual scaling is a machine-level property"
            )
        if config.stragglers:
            raise ConfigurationError(
                "per-job stragglers are not supported on a shared cluster; "
                "use ClusterScheduler.cluster.set_stragglers for fleet-level ones"
            )
        grid = None
        if config.grid is not None:
            pr, pc = config.grid
            grid = ProcessGrid(pr, pc)
        rp = plan_run(
            np.asarray(graph),
            variant=config.variant,
            block_size=config.block_size,
            machine=self.machine,
            n_nodes=config.n_nodes,
            ranks_per_node=config.ranks_per_node,
            grid=grid,
            diag_on_gpu=config.diag_on_gpu,
            n_streams=config.n_streams,
            ring_segments=config.ring_segments,
            mx_blocks=config.mx_blocks,
            nx_blocks=config.nx_blocks,
            collect_result=config.collect,
            validate=config.validate,
            check_negative_cycles=config.check_negative_cycles,
            compute_numerics=config.compute_numerics,
            track_paths=config.track_paths,
            exploit_sparsity=config.exploit_sparsity,
            kernel_backend=config.kernel_backend,
            fault_plan=config.fault_plan,
            checkpoint_interval=config.checkpoint_interval,
            recv_timeout=config.recv_timeout,
            fault_seed=config.fault_seed,
            verify=config.verify,
        )
        job = Job(
            job_id=self._next_id,
            name=name or f"job{self._next_id}",
            weights=rp.w,
            config=config,
            rp=rp,
            priority=priority,
            weight=weight,
            submit_at=max(arrival, self.env.now),
        )
        self._next_id += 1
        self.jobs.append(job)
        self.obs.counter("fleet.jobs.submitted").inc()
        if job.submit_at > self.env.now:
            self.env.process(self._arrival(job), name=f"{job.name}.arrival")
        else:
            self._admit_or_queue(job)
        return JobHandle(self, job)

    def _arrival(self, job: Job):
        yield self.env.timeout(job.submit_at - self.env.now)
        self._admit_or_queue(job)

    def _admit_or_queue(self, job: Job) -> None:
        job.submitted_at = self.env.now
        verdict, reason, demand = self.admission.check(job.rp)
        job.demand = demand
        job.reason = reason
        if verdict == "reject":
            job.status = JobStatus.REJECTED
            job.error = AdmissionError(job.name, reason)
            job.finished_at = self.env.now
            self.obs.counter("fleet.jobs.rejected").inc()
            self._account(job)
            return
        if verdict == "queue":
            job.status = JobStatus.QUEUED
            self._queue.append(job)
            self.obs.counter("fleet.jobs.queued").inc()
            self.obs.gauge("fleet.queue.depth").set(float(len(self._queue)))
            return
        self._start(job)

    def _start(self, job: Job) -> None:
        self.admission.reserve(job.demand)
        self.arbiter.register(job, job.priority, job.weight)
        job.status = JobStatus.RUNNING
        self.obs.counter("fleet.jobs.admitted").inc()
        self.env.process(job_process(self, job), name=f"{job.name}.runner", scope=job)

    def _on_job_finished(self, job: Job) -> None:
        """Runner callback: release capacity, record, retry the queue."""
        self.admission.release(job.demand)
        self.arbiter.unregister(job)
        tracer = self.handles.tracer
        if tracer is not None and job.started_at is not None:
            tracer.record(
                "fleet.jobs",
                "job",
                f"{job.name} p{job.priority} {job.status.value}",
                job.started_at,
                job.finished_at if job.finished_at is not None else self.env.now,
            )
        self._account(job)
        self._drain_queue()

    def _account(self, job: Job) -> None:
        if job.job_id in self._accounted or not job.done:
            return
        self._accounted.add(job.job_id)
        if job.status is JobStatus.DONE:
            self.obs.counter("fleet.jobs.completed").inc()
            self.obs.histogram("fleet.job.latency").observe(job.latency)
            self.obs.histogram("fleet.job.queue_wait").observe(job.queue_wait)
        elif job.status is JobStatus.FAILED:
            self.obs.counter("fleet.jobs.failed").inc()

    def _drain_queue(self) -> bool:
        """Admit whatever now fits, highest priority first (FIFO within
        a priority level).  Returns True if anything started."""
        started = False
        for job in sorted(self._queue, key=lambda j: (-j.priority, j.job_id)):
            verdict, reason, demand = self.admission.check(job.rp)
            job.demand = demand
            job.reason = reason
            if verdict == "admit":
                self._queue.remove(job)
                started = True
                self._start(job)
            elif verdict == "reject":  # pragma: no cover - capacity shrank?
                self._queue.remove(job)
                job.status = JobStatus.REJECTED
                job.error = AdmissionError(job.name, reason)
                job.finished_at = self.env.now
                self.obs.counter("fleet.jobs.rejected").inc()
                self._account(job)
        self.obs.gauge("fleet.queue.depth").set(float(len(self._queue)))
        return started

    # -- execution ----------------------------------------------------------
    def run(self, until_job: Optional[Job] = None) -> list:
        """Run the shared simulation until every job is terminal (or
        ``until_job`` is).  Deadlocked worlds - a job whose surviving
        ranks block on a peer that died without a receive timeout - are
        kicked (interrupted with :class:`~repro.errors.RankFailure`)
        once the event heap drains, mirroring the single-job driver's
        stuck-rank handling.  Returns the fleet's job reports.
        """
        while True:
            self.env.run()
            if until_job is not None and until_job.done:
                break
            running = [j for j in self.jobs if j.status is JobStatus.RUNNING]
            if running:
                kicked = False
                for j in running:
                    for p in j.procs:
                        if p.is_alive:
                            kicked = True
                            p.interrupt(
                                RankFailure("world deadlocked: peer will never send")
                            )
                if kicked:
                    continue
                break  # pragma: no cover - runner stuck without live ranks
            if self._queue:
                if self._drain_queue():
                    continue
                for job in list(self._queue):  # pragma: no cover - defensive
                    self._queue.remove(job)
                    job.status = JobStatus.REJECTED
                    reason = f"unschedulable: {job.reason or 'capacity never freed'}"
                    job.reason = reason
                    job.error = AdmissionError(job.name, reason)
                    job.finished_at = self.env.now
                    self.obs.counter("fleet.jobs.rejected").inc()
                    self._account(job)
            break
        self._finalize_fleet_metrics()
        return [j.report() for j in self.jobs]

    # -- fleet observability ------------------------------------------------
    def _finalize_fleet_metrics(self) -> None:
        makespan = self.env.now
        self.obs.gauge("fleet.makespan").set(makespan)
        cluster = self.handles.cluster
        kernel_busy = sum(
            gpu.kernel_engine.total_busy_time
            for node in cluster.nodes
            for gpu in node.gpus
        )
        n_gpus = len(cluster.nodes) * self.machine.node.gpus_per_node
        self.obs.gauge("fleet.gpu.busy_seconds").set(kernel_busy)
        self.obs.gauge("fleet.gpu.utilization").set(
            kernel_busy / (n_gpus * makespan) if makespan > 0 else 0.0
        )
        nic_busy = sum(node.nic_tx.total_busy_time for node in cluster.nodes)
        self.obs.gauge("fleet.nic.utilization").set(
            nic_busy / (len(cluster.nodes) * makespan) if makespan > 0 else 0.0
        )
        latencies = sorted(
            j.latency for j in self.jobs if j.status is JobStatus.DONE
        )
        if latencies:
            self.obs.gauge("fleet.job.latency.p50").set(_percentile(latencies, 0.50))
            self.obs.gauge("fleet.job.latency.p99").set(_percentile(latencies, 0.99))
        waits = sorted(j.queue_wait for j in self.jobs if j.status is JobStatus.DONE)
        if waits:
            self.obs.gauge("fleet.job.queue_wait.p50").set(_percentile(waits, 0.50))
            self.obs.gauge("fleet.job.queue_wait.p99").set(_percentile(waits, 0.99))

    def fleet_metrics(self):
        """The fleet's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.obs

    def chrome_trace(self, run_name: str = "repro fleet") -> dict:
        """Chrome ``trace_event`` JSON of the whole fleet: per-job rank
        and engine lanes interleave (``jobA.rank0``, ``jobB.rank0``,
        shared ``node0.nic``), which is the Perfetto view of
        multi-tenancy.  Requires ``trace=True`` at construction."""
        if self.handles.tracer is None:
            raise ConfigurationError(
                "fleet tracing is off; construct ClusterScheduler(trace=True)"
            )
        from ..obs.export import chrome_trace

        return chrome_trace(self.handles.tracer, run_name=run_name)

    def reports(self) -> list:
        return [j.report() for j in self.jobs]


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an ascending list (no numpy dance)."""
    if not sorted_values:
        return 0.0
    idx = max(0, min(len(sorted_values) - 1,
                     int(-(-q * len(sorted_values) // 1)) - 1))
    return float(sorted_values[idx])
