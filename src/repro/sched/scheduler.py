"""The shared-cluster job scheduler.

One :class:`ClusterScheduler` owns one simulated machine
(:class:`~repro.core.driver.MachineHandles`) and runs N submitted jobs
*concurrently on it*: every job gets a private MPI world and solver
context, but GPUs, NICs and intranode channels are the same simulated
resources, so contention, queueing and interference emerge from the
simulation instead of being assumed.

The moving parts:

* **admission** (:mod:`repro.sched.admission`) - jobs are priced from
  their resolved :class:`~repro.core.driver.RunPlan` and either
  admitted, queued until capacity frees, or rejected
  (:class:`~repro.errors.AdmissionError`);
* **arbitration** (:mod:`repro.sched.arbiter`) - contended resources
  grant by priority-weighted fair share instead of FIFO;
* **execution** (:mod:`repro.sched.runner`) - each admitted job is one
  supervised coroutine; failures are isolated per job;
* **observability** - fleet metrics (utilization, queue depth, per-job
  p50/p99 latency) in a :class:`~repro.obs.metrics.MetricsRegistry`,
  and job-tagged spans in one fleet tracer whose Chrome-trace export
  interleaves per-job Perfetto lanes (``jobA.rank0``,
  ``jobB.node0.gpu0.kernel``, ...).

Degenerate schedules are exact: submitting a single job reproduces the
unscheduled engine event-for-event - same distance bits, same makespan
(pinned against the recorded values in ``tests/test_sched.py``).

Typical use::

    from repro.sched import ClusterScheduler

    sched = ClusterScheduler(n_nodes=2)
    a = sched.submit(w1, variant="async", block_size=5, name="tenantA",
                     priority=1, n_nodes=2, ranks_per_node=3)
    b = sched.submit(w2, variant="offload", block_size=8, name="tenantB",
                     n_nodes=2, ranks_per_node=3)
    sched.run()
    print(a.report().elapsed, b.report().elapsed)
    print(sched.fleet_metrics().flat()["fleet.gpu.utilization"])
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api import SolveConfig, resolve_machine
from ..core.driver import MachineHandles, plan_run
from ..core.grid import ProcessGrid
from ..errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineExceeded,
    RankFailure,
    ReproError,
)
from .admission import AdmissionController, assess
from .arbiter import FairShareArbiter
from .job import Job, JobHandle, JobStatus
from .resilience import FleetResilience, ResiliencePolicy, RetryPolicy
from .runner import job_process

__all__ = ["ClusterScheduler"]


class ClusterScheduler:
    """Admit, arbitrate and run jobs on one shared simulated cluster."""

    def __init__(
        self,
        machine="summit",
        n_nodes: int = 1,
        *,
        dim_scale: float = 1.0,
        trace: bool = False,
        makespan_limit: Optional[float] = None,
        failure_grace: float = 0.05,
        resilience=None,
    ):
        self.machine = resolve_machine(machine)
        self.n_nodes = n_nodes
        self.dim_scale = dim_scale
        self.handles = MachineHandles.create(
            self.machine, n_nodes, dim_scale=dim_scale, trace=trace
        )
        #: Simulated seconds between a job's first rank failure and the
        #: reaper interrupting its still-blocked ranks (see runner).
        self.failure_grace = failure_grace
        self.arbiter = FairShareArbiter()
        for node in self.handles.cluster.nodes:
            node.nic_tx.arbiter = self.arbiter
            node.intra_channel.arbiter = self.arbiter
            node.host.dram.arbiter = self.arbiter
            for gpu in node.gpus:
                gpu.kernel_engine.arbiter = self.arbiter
                gpu.h2d_engine.arbiter = self.arbiter
                gpu.d2h_engine.arbiter = self.arbiter
        self.admission = AdmissionController(
            self.machine, n_nodes, self.handles.cost, makespan_limit
        )
        from ..obs import MetricsRegistry

        self.obs = MetricsRegistry()
        #: Fleet self-healing (:mod:`repro.sched.resilience`); None
        #: disarms it entirely - zero extra simulated events, so every
        #: PR-8 recording stays bit- and makespan-exact.  Accepts
        #: ``True`` (defaults), a :class:`ResiliencePolicy`, or its
        #: ``from_dict`` object form.
        if resilience is None or resilience is False:
            self.resilience: Optional[FleetResilience] = None
        else:
            if resilience is True:
                policy = ResiliencePolicy()
            elif isinstance(resilience, ResiliencePolicy):
                policy = resilience
            elif isinstance(resilience, dict):
                policy = ResiliencePolicy.from_dict(resilience)
            else:
                raise ConfigurationError(
                    "resilience must be True, a ResiliencePolicy, or an "
                    f"object form, got {type(resilience).__name__}"
                )
            self.resilience = FleetResilience(policy)
        self.jobs: list[Job] = []
        self._queue: list[Job] = []
        self._accounted: set[int] = set()
        self._next_id = 0

    # -- convenience views --------------------------------------------------
    @property
    def env(self):
        return self.handles.env

    @property
    def cluster(self):
        return self.handles.cluster

    @property
    def tracer(self):
        return self.handles.tracer

    # -- what-if (no graph required) ----------------------------------------
    def assess(self, n: float, n_nodes: Optional[int] = None,
               ranks_per_node: int = 12):
        """Shape-level feasibility + predicted makespan on this fleet's
        machine model (see :func:`repro.sched.admission.assess`)."""
        return assess(
            n,
            self.n_nodes if n_nodes is None else n_nodes,
            ranks_per_node,
            machine=self.machine,
            dim_scale=self.dim_scale,
        )

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        graph,
        config: Optional[SolveConfig] = None,
        *,
        name: Optional[str] = None,
        priority: int = 0,
        weight: float = 1.0,
        arrival: float = 0.0,
        retry=None,
        deadline: Optional[float] = None,
        **overrides,
    ) -> JobHandle:
        """Submit a job; returns a :class:`~repro.sched.job.JobHandle`.

        ``config``/``overrides`` carry the same vocabulary as
        :func:`repro.solve`.  ``arrival`` is the simulated time the job
        reaches the cluster (jobs with ``arrival <= now`` are admitted
        synchronously, so a lone immediate job lowers to the degenerate
        one-job schedule with zero scheduler events).  Configuration
        errors raise immediately; admission *rejections* come back as a
        REJECTED handle carrying an
        :class:`~repro.errors.AdmissionError` (exit code 15).

        ``retry`` (a :class:`~repro.sched.resilience.RetryPolicy` or
        its object form) overrides the fleet's default retry policy for
        this job; ``deadline`` is a simulated-seconds SLO measured from
        the job's arrival (kill + :class:`~repro.errors.DeadlineExceeded`,
        exit code 16).  Both need a resilience-armed scheduler.
        """
        if config is None:
            config = SolveConfig()
        if not isinstance(config, SolveConfig):
            raise ConfigurationError(
                f"config must be a SolveConfig, got {type(config).__name__}"
            )
        if overrides:
            config = config.replace(**overrides)
        config.obs.validate()
        if resolve_machine(config.machine).name != self.machine.name:
            raise ConfigurationError(
                f"job machine {resolve_machine(config.machine).name!r} differs from "
                f"the fleet's {self.machine.name!r}; one scheduler = one machine model"
            )
        if config.dim_scale != self.dim_scale:
            raise ConfigurationError(
                f"job dim_scale {config.dim_scale} differs from the fleet's "
                f"{self.dim_scale}; virtual scaling is a machine-level property"
            )
        if config.stragglers:
            raise ConfigurationError(
                "per-job stragglers are not supported on a shared cluster; "
                "use ClusterScheduler.cluster.set_stragglers for fleet-level ones"
            )
        if (retry is not None or deadline is not None) and self.resilience is None:
            raise ConfigurationError(
                "per-job retry/deadline need a resilience-armed scheduler; "
                "construct ClusterScheduler(resilience=True) (or a policy)"
            )
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
                raise ConfigurationError(
                    f"deadline must be a number of simulated seconds, got {deadline!r}"
                )
            if deadline <= 0:
                raise ConfigurationError(f"deadline must be > 0, got {deadline}")
            deadline = float(deadline)
        job_retry = None
        if self.resilience is not None:
            if retry is None:
                job_retry = self.resilience.policy.retry
            elif isinstance(retry, RetryPolicy):
                job_retry = retry
            elif isinstance(retry, dict):
                job_retry = RetryPolicy.from_dict(retry)
            else:
                raise ConfigurationError(
                    f"retry must be a RetryPolicy or its object form, "
                    f"got {type(retry).__name__}"
                )
        rp = self._plan(np.asarray(graph), config)
        job = Job(
            job_id=self._next_id,
            name=name or f"job{self._next_id}",
            weights=rp.w,
            config=config,
            rp=rp,
            priority=priority,
            weight=weight,
            submit_at=max(arrival, self.env.now),
            retry=job_retry,
            deadline=deadline,
        )
        self._next_id += 1
        self.jobs.append(job)
        self.obs.counter("fleet.jobs.submitted").inc()
        if deadline is not None:
            job._deadline_proc = self.env.process(
                self._deadline_watch(job), name=f"{job.name}.deadline"
            )
        if job.submit_at > self.env.now:
            self.env.process(self._arrival(job), name=f"{job.name}.arrival")
        else:
            self._admit_or_queue(job)
        return JobHandle(self, job)

    def _plan(self, weights, config: SolveConfig):
        """Resolve a :class:`~repro.core.driver.RunPlan` from a config
        (shared by :meth:`submit` and the resilience re-plan ladder, so
        both price jobs identically)."""
        grid = None
        if config.grid is not None:
            pr, pc = config.grid
            grid = ProcessGrid(pr, pc)
        return plan_run(
            weights,
            variant=config.variant,
            block_size=config.block_size,
            machine=self.machine,
            n_nodes=config.n_nodes,
            ranks_per_node=config.ranks_per_node,
            grid=grid,
            diag_on_gpu=config.diag_on_gpu,
            n_streams=config.n_streams,
            ring_segments=config.ring_segments,
            mx_blocks=config.mx_blocks,
            nx_blocks=config.nx_blocks,
            collect_result=config.collect,
            validate=config.validate,
            check_negative_cycles=config.check_negative_cycles,
            compute_numerics=config.compute_numerics,
            track_paths=config.track_paths,
            exploit_sparsity=config.exploit_sparsity,
            kernel_backend=config.kernel_backend,
            fault_plan=config.fault_plan,
            checkpoint_interval=config.checkpoint_interval,
            recv_timeout=config.recv_timeout,
            fault_seed=config.fault_seed,
            verify=config.verify,
        )

    def _arrival(self, job: Job):
        yield self.env.timeout(job.submit_at - self.env.now)
        self._admit_or_queue(job)

    def _admit_or_queue(self, job: Job) -> None:
        if job.submitted_at is None:
            job.submitted_at = self.env.now
        ok, node_map = self._choose_node_map(job)
        if not ok:
            job.status = JobStatus.QUEUED
            job.reason = "waiting for quarantined devices to be reinstated"
            self._queue.append(job)
            self.obs.counter("fleet.jobs.queued").inc()
            self.obs.gauge("fleet.queue.depth").set(float(len(self._queue)))
            return
        job.node_map = node_map
        verdict, reason, demand = self.admission.check(job.rp, node_map=node_map)
        job.demand = demand
        job.reason = reason
        if verdict == "reject":
            job.status = JobStatus.REJECTED
            job.error = AdmissionError(job.name, reason)
            job.finished_at = self.env.now
            self.obs.counter("fleet.jobs.rejected").inc()
            self._account(job)
            return
        if verdict == "queue":
            job.status = JobStatus.QUEUED
            self._queue.append(job)
            self.obs.counter("fleet.jobs.queued").inc()
            self.obs.gauge("fleet.queue.depth").set(float(len(self._queue)))
            return
        self._start(job)

    def _start(self, job: Job) -> None:
        self.admission.reserve(job.demand)
        self.arbiter.register(job, job.priority, job.weight)
        job.status = JobStatus.RUNNING
        self.obs.counter("fleet.jobs.admitted").inc()
        self.env.process(job_process(self, job), name=f"{job.name}.runner", scope=job)

    def _on_job_finished(self, job: Job) -> None:
        """Runner callback: release capacity, record, maybe retry the
        job (resilience layer), retry the queue."""
        self.admission.release(job.demand)
        self.arbiter.unregister(job)
        if self.resilience is not None:
            self._observe_health(job)
        retry = self.resilience is not None and self._should_retry(job)
        tracer = self.handles.tracer
        if tracer is not None and job.started_at is not None:
            end = job.finished_at if job.finished_at is not None else self.env.now
            if retry:
                tracer.record(
                    "fleet.resilience",
                    "retry",
                    f"{job.name} attempt {job.attempt + 1} "
                    f"{type(job.error).__name__ if job.error is not None else 'failed'}",
                    job.started_at,
                    end,
                )
            else:
                label = f"{job.name} p{job.priority} {job.status.value}"
                if job.attempt:
                    label += f" (attempt {job.attempt + 1})"
                tracer.record("fleet.jobs", "job", label, job.started_at, end)
        if retry:
            self._begin_retry(job)
        else:
            self._account(job)
        self._drain_queue()

    def _account(self, job: Job) -> None:
        if job.job_id in self._accounted or not job.done:
            return
        self._accounted.add(job.job_id)
        watch = getattr(job, "_deadline_proc", None)
        if watch is not None and watch.is_alive:
            # The job is terminal: cancel its pending deadline watchdog
            # so the sleeping timer does not stretch the simulation.
            watch.defuse()
            watch.interrupt()
        if job.status is JobStatus.DONE:
            self.obs.counter("fleet.jobs.completed").inc()
            self.obs.histogram("fleet.job.latency").observe(job.latency)
            self.obs.histogram("fleet.job.queue_wait").observe(job.queue_wait)
            if self.resilience is not None and job.first_failed_at is not None:
                # MTTR: first failure -> eventual recovery, per job.
                self.obs.histogram("fleet.resilience.mttr").observe(
                    (job.finished_at if job.finished_at is not None else self.env.now)
                    - job.first_failed_at
                )
                self.obs.counter("fleet.resilience.recovered").inc()
        elif job.status is JobStatus.FAILED:
            self.obs.counter("fleet.jobs.failed").inc()

    def _drain_queue(self) -> bool:
        """Admit whatever now fits, highest priority first (FIFO within
        a priority level).  Returns True if anything started."""
        started = False
        for job in sorted(self._queue, key=lambda j: (-j.priority, j.job_id)):
            ok, node_map = self._choose_node_map(job)
            if not ok:
                job.reason = "waiting for quarantined devices to be reinstated"
                continue
            job.node_map = node_map
            verdict, reason, demand = self.admission.check(job.rp, node_map=node_map)
            job.demand = demand
            job.reason = reason
            if verdict == "admit":
                self._queue.remove(job)
                started = True
                self._start(job)
            elif verdict == "reject":  # pragma: no cover - capacity shrank?
                self._queue.remove(job)
                job.status = JobStatus.REJECTED
                job.error = AdmissionError(job.name, reason)
                job.finished_at = self.env.now
                self.obs.counter("fleet.jobs.rejected").inc()
                self._account(job)
        self.obs.gauge("fleet.queue.depth").set(float(len(self._queue)))
        return started

    # -- self-healing (all no-ops when ``resilience`` is disarmed) ----------
    def _choose_node_map(self, job: Job):
        """Pick a logical->physical node remap that avoids quarantined
        devices: ``(True, None)`` when the job's own nodes are healthy
        (the identity - and the only possible answer on a disarmed
        fleet), ``(True, map)`` when enough other nodes are, and
        ``(False, None)`` when the job must wait for a reinstatement."""
        res = self.resilience
        if res is None or not res.monitor.quarantined:
            return True, None
        need = job.rp.n_nodes
        if not any(res.monitor.node_quarantined(n) for n in range(need)):
            return True, None
        healthy = res.monitor.healthy_nodes(self.n_nodes)
        if len(healthy) >= need:
            return True, healthy[:need]
        return False, None

    def _observe_health(self, job: Job) -> None:
        """Drain the attempt's device blame list into the fleet's
        scoreboard; new quarantines get a probation-expiry process (the
        queue is drained on reinstatement, not only on completions)."""
        res = self.resilience
        monitor = res.monitor
        now = self.env.now
        tracer = self.handles.tracer
        for device in job.fault_devices:
            if monitor.record_fault(device, now):
                self.obs.counter("fleet.resilience.quarantines").inc()
                until = monitor.quarantined[device]
                label = ".".join(str(p) for p in device)
                if tracer is not None:
                    tracer.record(
                        "fleet.resilience", "quarantine",
                        f"{label} quarantined", now, until,
                    )
                self.env.process(
                    self._probation(until), name=f"probation.{label}"
                )
        job.fault_devices = []

    def _probation(self, until: float):
        if until > self.env.now:
            yield self.env.timeout(until - self.env.now)
        else:  # pragma: no cover - probation windows are > 0
            yield self.env.timeout(0.0)
        released = self.resilience.monitor.release_due(self.env.now)
        for _ in released:
            self.obs.counter("fleet.resilience.reinstated").inc()
        if released:
            # Reinstatement frees placement slots admission alone never
            # would: drain the queue here too, not only on completions.
            self._drain_queue()

    def _should_retry(self, job: Job) -> bool:
        """Decide (without side effects beyond poison marking) whether
        this failed attempt gets another one."""
        if job.status is not JobStatus.FAILED or job.retry is None:
            return False
        if isinstance(job.error, (AdmissionError, ConfigurationError, DeadlineExceeded)):
            return False  # retrying cannot change these
        if job.attempt + 1 >= job.retry.max_attempts:
            if not job.poisoned:
                job.poisoned = True
                job.reason = (
                    f"poisoned: {job.attempt + 1} attempts exhausted "
                    f"(last failure: {type(job.error).__name__})"
                )
                self.obs.counter("fleet.resilience.poisoned").inc()
            return False
        res = self.resilience
        if res.budget_left() <= 0:
            job.reason = "fleet retry budget exhausted"
            return False
        return True

    def _begin_retry(self, job: Job) -> None:
        """Reset the job to a pre-admission state and schedule its
        backoff-delayed re-admission."""
        res = self.resilience
        res.retries_spent += 1
        job.attempt += 1
        if job.first_failed_at is None:
            job.first_failed_at = self.env.now
        self.obs.counter("fleet.resilience.retries").inc()
        delay = job.retry.delay(job.job_id, job.attempt)
        job.status = JobStatus.PENDING
        job.error = None
        job.result = None
        job.reason = None
        job.started_at = None
        job.finished_at = None
        job.restarts = 0
        self.env.process(
            self._readmit(job, delay), name=f"{job.name}.retry{job.attempt}"
        )

    def _readmit(self, job: Job, delay: float):
        yield self.env.timeout(delay)
        if job.done:
            return  # the deadline watchdog got there first
        self._prepare_attempt(job)
        self._admit_or_queue(job)

    def _prepare_attempt(self, job: Job) -> None:
        """Arrange the retry's starting state: re-plan if quarantines
        shrank the healthy fleet below the job's node count, then
        resume from the newest CRC-valid consistent checkpoint when one
        exists - from scratch otherwise."""
        healthy = self.resilience.monitor.healthy_nodes(self.n_nodes)
        if 1 <= len(healthy) < job.rp.n_nodes:
            if self._replan(job, healthy):
                return  # _replan arranged checkpoint carry itself
        rt = job.faults_rt
        if rt is not None:
            k0 = rt.store.consistent_k(job.rp.n_ranks)
            if k0 is not None:
                rt.start_k = k0
                rt.resumed = True
                for r in range(job.rp.n_ranks):
                    rt.last_saved[r] = max(rt.last_saved.get(r, 0), k0)
                return
            # Every consistent cut is corrupted: drop the store and
            # fall through to a from-scratch retry.
            job.faults_rt = None
        job.rp.locals_ = None
        job.rp.nxt_locals = None

    def _replan(self, job: Job, healthy: list) -> bool:
        """Re-run the feasibility ladder for the shrunken healthy fleet
        and re-plan the job onto it (smaller grid, or the offload
        variant when HBM no longer suffices).  Carries the newest
        consistent checkpoint across the grid change when the blocking
        is unchanged.  Returns True when the job was re-planned."""
        rp = job.rp
        n_nodes = len(healthy)
        ranks_per_node = rp.placement.ranks_per_node
        a = self.assess(rp.n, n_nodes=n_nodes, ranks_per_node=ranks_per_node)
        if not a.feasible:
            return False  # keep the shape; queue until reinstatement
        variant = job.config.variant
        if a.feasibility == "needs-offload" and not job.config.offload:
            variant = "offload"
        plan = rp.plan
        if plan is not None:
            nr = n_nodes * ranks_per_node
            plan = plan.replace(
                crashes=tuple(c for c in plan.crashes if c.rank < nr),
                ooms=tuple(o for o in plan.ooms if o.rank < nr),
                stragglers=tuple(s for s in plan.stragglers if s.rank < nr),
                memory_faults=tuple(m for m in plan.memory_faults if m.rank < nr),
                message_faults=tuple(
                    f for f in plan.message_faults
                    if (f.src is None or f.src < nr)
                    and (f.dst is None or f.dst < nr)
                ),
            )
        new_config = job.config.replace(
            n_nodes=n_nodes, variant=variant, grid=None, fault_plan=plan
        )
        try:
            new_rp = self._plan(np.asarray(job.weights), new_config)
        except ReproError:
            # e.g. the offload block-size floor: retry with the tuner's
            # choice (checkpoints are dropped - the blocking changes).
            try:
                new_config = new_config.replace(block_size=None)
                new_rp = self._plan(np.asarray(job.weights), new_config)
            except ReproError:
                return False
        self.obs.counter("fleet.resilience.replans").inc()
        job.reason = (
            f"re-planned onto {n_nodes} healthy node(s) as {new_rp.var.value}"
        )
        rt = job.faults_rt
        job.faults_rt = None
        if (
            rt is not None
            and new_rp.plan is not None
            and new_rp.nb == rp.nb
            and new_rp.b == rp.b
        ):
            from ..faults import FaultInjector, FaultRuntime
            from ..faults.checkpoint import reshard

            k0 = rt.store.consistent_k(rp.n_ranks)
            if k0 is not None:
                try:
                    store = reshard(
                        rt.store, k0, rp.n_ranks, new_rp.grid, new_rp.nb,
                        track_paths=new_rp.track_paths,
                    )
                except ReproError:
                    store = None
                if store is not None:
                    injector = FaultInjector(new_rp.plan)
                    injector.counters.update(rt.injector.counters)
                    job.faults_rt = FaultRuntime(
                        injector, store, start_k=k0,
                        last_saved={r: k0 for r in range(new_rp.n_ranks)},
                        resumed=True,
                    )
        job.rp = new_rp
        job.config = new_config
        job.node_map = None  # re-chosen at admission for the new shape
        return True

    def _deadline_watch(self, job: Job):
        """Kill the job when its simulated-time SLO expires: running
        attempts are interrupted (the runner raises
        :class:`~repro.errors.DeadlineExceeded` at the epoch boundary),
        queued/backing-off ones fail on the spot.  Deadline kills are
        never retried."""
        target = job.submit_at + job.deadline
        if target > self.env.now:
            yield self.env.timeout(target - self.env.now)
        else:  # pragma: no cover - deadlines are > 0
            yield self.env.timeout(0.0)
        job._deadline_proc = None  # past this point nobody cancels us
        if job.done:
            return
        exc = DeadlineExceeded(job.name, job.deadline)
        self.obs.counter("fleet.resilience.deadline_kills").inc()
        if job.status is JobStatus.RUNNING:
            job.killed = exc
            for p in job.procs:
                if p.is_alive:
                    p.interrupt(exc)
            return  # the runner surfaces the failure and notifies us
        if job in self._queue:
            self._queue.remove(job)
            self.obs.gauge("fleet.queue.depth").set(float(len(self._queue)))
        job.status = JobStatus.FAILED
        job.error = exc
        if job.finished_at is None:
            job.finished_at = self.env.now
        self._account(job)

    # -- execution ----------------------------------------------------------
    def run(self, until_job: Optional[Job] = None) -> list:
        """Run the shared simulation until every job is terminal (or
        ``until_job`` is).  Deadlocked worlds - a job whose surviving
        ranks block on a peer that died without a receive timeout - are
        kicked (interrupted with :class:`~repro.errors.RankFailure`)
        once the event heap drains, mirroring the single-job driver's
        stuck-rank handling.  Returns the fleet's job reports.
        """
        while True:
            self.env.run()
            if until_job is not None and until_job.done:
                break
            running = [j for j in self.jobs if j.status is JobStatus.RUNNING]
            if running:
                kicked = False
                for j in running:
                    for p in j.procs:
                        if p.is_alive:
                            kicked = True
                            p.interrupt(
                                RankFailure("world deadlocked: peer will never send")
                            )
                if kicked:
                    continue
                break  # pragma: no cover - runner stuck without live ranks
            if self._queue:
                if self._drain_queue():
                    continue
                for job in list(self._queue):  # pragma: no cover - defensive
                    self._queue.remove(job)
                    job.status = JobStatus.REJECTED
                    reason = f"unschedulable: {job.reason or 'capacity never freed'}"
                    job.reason = reason
                    job.error = AdmissionError(job.name, reason)
                    job.finished_at = self.env.now
                    self.obs.counter("fleet.jobs.rejected").inc()
                    self._account(job)
            break
        self._finalize_fleet_metrics()
        return [j.report() for j in self.jobs]

    # -- fleet observability ------------------------------------------------
    def _finalize_fleet_metrics(self) -> None:
        makespan = self.env.now
        if self.resilience is not None:
            # Armed fleets can have trailing bookkeeping events (a met
            # deadline's cancelled watchdog timer, a probation expiry
            # after the last job): the makespan is the last *useful*
            # event - the final job completion - not the drained heap.
            done_times = [j.finished_at for j in self.jobs if j.finished_at is not None]
            if done_times:
                makespan = max(done_times)
        self.obs.gauge("fleet.makespan").set(makespan)
        cluster = self.handles.cluster
        kernel_busy = sum(
            gpu.kernel_engine.total_busy_time
            for node in cluster.nodes
            for gpu in node.gpus
        )
        n_gpus = len(cluster.nodes) * self.machine.node.gpus_per_node
        self.obs.gauge("fleet.gpu.busy_seconds").set(kernel_busy)
        self.obs.gauge("fleet.gpu.utilization").set(
            kernel_busy / (n_gpus * makespan) if makespan > 0 else 0.0
        )
        nic_busy = sum(node.nic_tx.total_busy_time for node in cluster.nodes)
        self.obs.gauge("fleet.nic.utilization").set(
            nic_busy / (len(cluster.nodes) * makespan) if makespan > 0 else 0.0
        )
        latencies = sorted(
            j.latency for j in self.jobs if j.status is JobStatus.DONE
        )
        if latencies:
            self.obs.gauge("fleet.job.latency.p50").set(_percentile(latencies, 0.50))
            self.obs.gauge("fleet.job.latency.p99").set(_percentile(latencies, 0.99))
        waits = sorted(j.queue_wait for j in self.jobs if j.status is JobStatus.DONE)
        if waits:
            self.obs.gauge("fleet.job.queue_wait.p50").set(_percentile(waits, 0.50))
            self.obs.gauge("fleet.job.queue_wait.p99").set(_percentile(waits, 0.99))
        if self.resilience is not None:
            res = self.resilience
            self.obs.gauge("fleet.resilience.retry_budget_remaining").set(
                float(res.budget_left())
            )
            self.obs.gauge("fleet.resilience.device_faults").set(
                float(res.monitor.total_faults)
            )
            mttrs = sorted(
                (j.finished_at if j.finished_at is not None else self.env.now)
                - j.first_failed_at
                for j in self.jobs
                if j.status is JobStatus.DONE and j.first_failed_at is not None
            )
            if mttrs:
                self.obs.gauge("fleet.resilience.mttr.p50").set(
                    _percentile(mttrs, 0.50)
                )
                self.obs.gauge("fleet.resilience.mttr.max").set(mttrs[-1])

    def fleet_metrics(self):
        """The fleet's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.obs

    def chrome_trace(self, run_name: str = "repro fleet") -> dict:
        """Chrome ``trace_event`` JSON of the whole fleet: per-job rank
        and engine lanes interleave (``jobA.rank0``, ``jobB.rank0``,
        shared ``node0.nic``), which is the Perfetto view of
        multi-tenancy.  Requires ``trace=True`` at construction."""
        if self.handles.tracer is None:
            raise ConfigurationError(
                "fleet tracing is off; construct ClusterScheduler(trace=True)"
            )
        from ..obs.export import chrome_trace

        return chrome_trace(self.handles.tracer, run_name=run_name)

    def reports(self) -> list:
        return [j.report() for j in self.jobs]


def _percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of an ascending list (no numpy dance)."""
    if not sorted_values:
        return 0.0
    idx = max(0, min(len(sorted_values) - 1,
                     int(-(-q * len(sorted_values) // 1)) - 1))
    return float(sorted_values[idx])
