"""Multi-tenant cluster scheduling: jobs, admission, fair share.

The one-job engine (:func:`repro.solve` / :func:`repro.core.driver.apsp`)
solves a single APSP on a private simulated machine.  This subpackage
turns the same machinery into a *shared-cluster job runtime*: a
:class:`ClusterScheduler` owns one simulated machine, admits first-class
:class:`~repro.sched.job.Job` objects against perf-model capacity
predictions, arbitrates contended GPUs and NICs by priority-weighted
fair share, and runs every admitted job concurrently with per-job fault
isolation and per-job observability.

See docs/SCHEDULING.md for the job model, admission-control and
fair-share semantics, and the Perfetto recipe for fleet traces.  An
optional self-healing layer (``resilience.py`` / ``health.py``, see
docs/RESILIENCE.md) adds retry-with-backoff, device quarantine,
checkpoint-carrying re-admission and per-job deadlines on top.
"""

from .admission import AdmissionController, Assessment, JobDemand, assess, demand_of
from .arbiter import FairShareArbiter
from .health import DeviceHealthMonitor, HealthPolicy
from .job import Job, JobHandle, JobReport, JobStatus
from .resilience import FleetResilience, ResiliencePolicy, RetryPolicy
from .scheduler import ClusterScheduler
from .spec import build_graph, load_job_mix, run_job_mix

__all__ = [
    "AdmissionController",
    "Assessment",
    "ClusterScheduler",
    "DeviceHealthMonitor",
    "FairShareArbiter",
    "FleetResilience",
    "HealthPolicy",
    "Job",
    "JobDemand",
    "JobHandle",
    "JobReport",
    "JobStatus",
    "ResiliencePolicy",
    "RetryPolicy",
    "assess",
    "build_graph",
    "demand_of",
    "load_job_mix",
    "run_job_mix",
]
