"""Job-mix specifications: a JSON document describing a whole workload.

The ``repro-apsp sched`` subcommand runs one of these end to end; the
benchmark and the CI ``sched`` job use the same vocabulary.  Shape::

    {
      "machine": "summit",
      "n_nodes": 2,
      "trace": false,
      "makespan_limit": null,
      "jobs": [
        {
          "name": "tenantA",
          "graph": {"kind": "uniform_random_dense", "n": 30, "seed": 0},
          "priority": 1,
          "weight": 1.0,
          "arrival": 0.0,
          "config": {"variant": "async", "block_size": 5,
                     "n_nodes": 2, "ranks_per_node": 3}
        },
        ...
      ]
    }

``graph.kind`` names a generator in :mod:`repro.graphs` (its remaining
keys are passed through as keyword arguments), or ``{"kind": "file",
"path": ...}`` loads a matrix via :func:`repro.graphs.load_matrix`.
``config`` keys are :class:`~repro.api.SolveConfig` fields.

A top-level ``"resilience"`` object (or ``true`` for the defaults) arms
the fleet self-healing layer (docs/RESILIENCE.md)::

    "resilience": {"retry": {"max_attempts": 3, "backoff_base": 0.005},
                   "health": {"fault_threshold": 2, "probation": 0.05},
                   "retry_budget": 16}

and jobs may then carry ``"retry"`` (same keys as above) and
``"deadline"`` (simulated-seconds SLO, > 0).  All three are validated
strictly - unknown keys, wrong types or out-of-range values reject the
spec with :class:`~repro.errors.ConfigurationError` (exit code 2).
"""

from __future__ import annotations

import json
from typing import Optional

from ..api import SolveConfig
from ..errors import ConfigurationError
from .resilience import ResiliencePolicy, RetryPolicy
from .scheduler import ClusterScheduler

__all__ = ["build_graph", "load_job_mix", "run_job_mix"]

#: Generators a job-mix file may name (whitelist: a spec file is data,
#: not code, so it does not get arbitrary attribute lookup).
_GRAPH_KINDS = (
    "uniform_random_dense",
    "erdos_renyi",
    "grid_road_network",
    "ring_of_cliques",
    "power_law_graph",
    "banded_graph",
)


def build_graph(spec: dict):
    """Materialize a job's graph from its ``graph`` spec object."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ConfigurationError(f"graph spec must be an object with 'kind', got {spec!r}")
    kind = spec["kind"]
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "file":
        from ..graphs import load_matrix

        try:
            return load_matrix(kwargs["path"])
        except KeyError:
            raise ConfigurationError("graph kind 'file' needs a 'path'") from None
    if kind == "zeros":
        import numpy as np

        try:
            return np.zeros((int(kwargs["n"]), int(kwargs["n"])), dtype=np.float32)
        except KeyError:
            raise ConfigurationError("graph kind 'zeros' needs 'n'") from None
    if kind not in _GRAPH_KINDS:
        raise ConfigurationError(
            f"unknown graph kind {kind!r}; known: {sorted(_GRAPH_KINDS + ('file', 'zeros'))}"
        )
    import repro.graphs as graphs

    return getattr(graphs, kind)(**kwargs)


def load_job_mix(path: str) -> dict:
    with open(path) as f:
        spec = json.load(f)
    if not isinstance(spec, dict) or not isinstance(spec.get("jobs"), list):
        raise ConfigurationError(f"{path}: a job mix is an object with a 'jobs' array")
    if not spec["jobs"]:
        raise ConfigurationError(f"{path}: the 'jobs' array is empty")
    return spec


def _parse_resilience(raw):
    """Top-level ``"resilience"`` value -> ClusterScheduler argument."""
    if raw is None or raw is False:
        return None
    if raw is True:
        return ResiliencePolicy()
    if isinstance(raw, dict):
        return ResiliencePolicy.from_dict(raw)
    raise ConfigurationError(
        f"'resilience' must be true, false or an object, got {type(raw).__name__}"
    )


def _parse_job_retry(raw, where: str):
    """Per-job ``"retry"`` value -> submit() argument (None = fleet default)."""
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise ConfigurationError(
            f"{where}: 'retry' must be an object, got {type(raw).__name__}"
        )
    return RetryPolicy.from_dict(raw)


def _parse_job_deadline(raw, where: str):
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw <= 0:
        raise ConfigurationError(
            f"{where}: 'deadline' must be a number > 0, got {raw!r}"
        )
    return float(raw)


def run_job_mix(
    spec: dict,
    trace: Optional[bool] = None,
) -> tuple[ClusterScheduler, list]:
    """Run a job-mix spec; returns ``(scheduler, job reports)``."""
    sched = ClusterScheduler(
        machine=spec.get("machine", "summit"),
        n_nodes=int(spec.get("n_nodes", 1)),
        dim_scale=float(spec.get("dim_scale", 1.0)),
        trace=bool(spec.get("trace", False)) if trace is None else trace,
        makespan_limit=spec.get("makespan_limit"),
        resilience=_parse_resilience(spec.get("resilience")),
    )
    for i, jspec in enumerate(spec["jobs"]):
        if "graph" not in jspec:
            raise ConfigurationError(f"job #{i} has no 'graph'")
        where = f"job #{i} ({jspec.get('name', f'job{i}')})"
        graph = build_graph(jspec["graph"])
        cfg_fields = dict(jspec.get("config", {}))
        cfg_fields.setdefault("machine", spec.get("machine", "summit"))
        cfg_fields.setdefault("dim_scale", float(spec.get("dim_scale", 1.0)))
        if "grid" in cfg_fields and cfg_fields["grid"] is not None:
            cfg_fields["grid"] = tuple(cfg_fields["grid"])
        config = SolveConfig.from_env(**cfg_fields)
        sched.submit(
            graph,
            config,
            name=jspec.get("name", f"job{i}"),
            priority=int(jspec.get("priority", 0)),
            weight=float(jspec.get("weight", 1.0)),
            arrival=float(jspec.get("arrival", 0.0)),
            retry=_parse_job_retry(jspec.get("retry"), where),
            deadline=_parse_job_deadline(jspec.get("deadline"), where),
        )
    reports = sched.run()
    return sched, reports
