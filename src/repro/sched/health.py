"""Device health tracking: the fleet's per-GPU/NIC fault scoreboard.

The scheduler treats every simulated device as healthy forever; real
fleets do not get that luxury - a flaky GPU crashes job after job, and
every crashed job is re-placed onto the same flaky GPU.  The
:class:`DeviceHealthMonitor` breaks that loop: runner failure
classifications are attributed to the device they struck (crash / OOM /
SDC -> the failing rank's GPU, comm timeout -> the rank's node NIC),
and a device that accumulates :attr:`HealthPolicy.fault_threshold`
faults is **quarantined** - the scheduler stops placing jobs on its
node until a probation window of :attr:`HealthPolicy.probation`
simulated seconds has passed, after which the device is reinstated
with a clean scoreboard.

Quarantine granularity: faults are *scored* per device, but placement
avoidance acts on the device's whole node (rank -> GPU binding is a
fixed round-robin, so a job cannot sidestep one GPU of a node it is
placed on).  See docs/RESILIENCE.md.

Everything here is plain bookkeeping - no simulated events, no cost.
The scheduler owns the clock; the monitor only records and answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError

__all__ = ["DeviceHealthMonitor", "HealthPolicy", "gpu_device", "nic_device"]

#: Failure classes the runner attributes to the failing rank's GPU.
GPU_FAULT_CLASSES = ("crashed", "oom", "sdc", "error")
#: Failure classes attributed to the rank's node NIC.
NIC_FAULT_CLASSES = ("timeout",)


def gpu_device(node: int, gpu: int) -> tuple:
    """Scoreboard key of one GPU: ``("gpu", node, index)``."""
    return ("gpu", node, gpu)


def nic_device(node: int) -> tuple:
    """Scoreboard key of one node's NIC: ``("nic", node)``."""
    return ("nic", node)


@dataclass(frozen=True)
class HealthPolicy:
    """When a device is quarantined and for how long."""

    #: Faults a device absorbs before quarantine kicks in.
    fault_threshold: int = 3
    #: Simulated seconds a quarantined device sits out before it is
    #: reinstated (scoreboard reset to zero).
    probation: float = 0.05

    def __post_init__(self):
        if not isinstance(self.fault_threshold, int) or isinstance(self.fault_threshold, bool):
            raise ConfigurationError(
                f"health fault_threshold must be an int, got {self.fault_threshold!r}"
            )
        if self.fault_threshold < 1:
            raise ConfigurationError(
                f"health fault_threshold must be >= 1, got {self.fault_threshold}"
            )
        if isinstance(self.probation, bool) or not isinstance(self.probation, (int, float)):
            raise ConfigurationError(
                f"health probation must be a number, got {self.probation!r}"
            )
        if not self.probation > 0:
            raise ConfigurationError(
                f"health probation must be > 0 seconds, got {self.probation}"
            )

    # -- spec round-trip ----------------------------------------------------
    _KEYS = ("fault_threshold", "probation")

    def to_dict(self) -> dict:
        return {"fault_threshold": self.fault_threshold, "probation": float(self.probation)}

    @classmethod
    def from_dict(cls, raw: dict) -> "HealthPolicy":
        if not isinstance(raw, dict):
            raise ConfigurationError(f"health policy must be an object, got {raw!r}")
        unknown = set(raw) - set(cls._KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown health policy keys {sorted(unknown)}; known: {list(cls._KEYS)}"
            )
        kwargs = dict(raw)
        if "probation" in kwargs:
            value = kwargs["probation"]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(f"health probation must be a number, got {value!r}")
            kwargs["probation"] = float(value)
        return cls(**kwargs)


class DeviceHealthMonitor:
    """Per-device fault scoreboard with quarantine + probation.

    State machine per device::

        healthy --fault x threshold--> quarantined --probation--> healthy
                                                     (scoreboard reset)

    The monitor never reads the clock itself: callers pass ``now``
    (simulated time) into :meth:`record_fault` and :meth:`release_due`.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None):
        self.policy = policy or HealthPolicy()
        #: device -> faults recorded since its last clean state.
        self.faults: dict[tuple, int] = {}
        #: device -> simulated time its probation expires.
        self.quarantined: dict[tuple, float] = {}
        #: Lifetime counters (feed ``fleet.resilience.*`` gauges).
        self.total_faults = 0
        self.total_quarantines = 0
        self.total_reinstated = 0

    # -- scoring ------------------------------------------------------------
    def record_fault(self, device: tuple, now: float) -> bool:
        """Score one fault against ``device``; returns True when this
        fault tips the device into quarantine."""
        self.total_faults += 1
        if device in self.quarantined:
            return False  # already out of rotation; don't re-quarantine
        count = self.faults.get(device, 0) + 1
        self.faults[device] = count
        if count < self.policy.fault_threshold:
            return False
        self.quarantined[device] = now + self.policy.probation
        self.total_quarantines += 1
        return True

    # -- queries ------------------------------------------------------------
    def is_quarantined(self, device: tuple) -> bool:
        return device in self.quarantined

    def node_quarantined(self, node: int) -> bool:
        """True when any device of ``node`` is quarantined (placement
        avoidance acts at node granularity)."""
        return any(d[1] == node for d in self.quarantined)

    def healthy_nodes(self, n_nodes: int) -> list[int]:
        return [n for n in range(n_nodes) if not self.node_quarantined(n)]

    def next_release(self) -> Optional[float]:
        """The earliest probation expiry, or None when nothing is out."""
        if not self.quarantined:
            return None
        return min(self.quarantined.values())

    # -- probation ----------------------------------------------------------
    def release_due(self, now: float) -> list[tuple]:
        """Reinstate every device whose probation has expired at
        ``now``; their scoreboards reset to zero.  Returns the released
        devices (empty when none were due)."""
        released = [d for d, until in self.quarantined.items() if until <= now]
        for device in released:
            del self.quarantined[device]
            self.faults.pop(device, None)
            self.total_reinstated += 1
        return released

    def describe(self) -> str:
        if not self.quarantined:
            return "all devices healthy"
        parts = [
            f"{'.'.join(str(p) for p in d)} until t={t:.6g}"
            for d, t in sorted(self.quarantined.items())
        ]
        return "quarantined: " + ", ".join(parts)
