"""First-class jobs: what the cluster scheduler admits, runs, reports.

A :class:`Job` couples a graph with a
:class:`~repro.api.SolveConfig`, a priority and a submission time.  The
scheduler hands callers a :class:`JobHandle` (poll / wait / result) and
leaves a :class:`JobReport` behind for every job - including failed and
rejected ones, which carry the same per-class exit codes the CLI uses
(:func:`repro.errors.exit_code_for`), so a crashed job in a shared
cluster is diagnosable exactly like a crashed single run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import exit_code_for

__all__ = ["Job", "JobHandle", "JobReport", "JobStatus"]


class JobStatus(enum.Enum):
    #: Submitted with a future arrival time; not yet at the cluster.
    PENDING = "pending"
    #: Admissible, but the fleet is oversubscribed right now.
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    #: Refused at admission: can never fit (or breaks the makespan SLO).
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.REJECTED)


@dataclass(eq=False)  # identity semantics: a job is an entity, not a value
class Job:
    """One unit of scheduled work: a graph + solve config + share."""

    job_id: int
    name: str
    weights: Any = field(repr=False, default=None)
    config: Any = field(repr=False, default=None)  # SolveConfig
    rp: Any = field(repr=False, default=None)  # core.driver.RunPlan
    #: Larger = more important; buys a larger fair share (2x per level),
    #: never absolute preemption.
    priority: int = 0
    #: Fair-share weight within a priority level.
    weight: float = 1.0
    #: Simulated arrival time (seconds); 0 = already at the cluster.
    submit_at: float = 0.0
    status: JobStatus = JobStatus.PENDING
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Any = field(repr=False, default=None)  # ApspResult
    error: Optional[BaseException] = field(repr=False, default=None)
    #: Why the job was refused/queued last (human-readable).
    reason: Optional[str] = None
    restarts: int = 0
    #: Memory demand reserved at admission (set by the controller).
    demand: Any = field(repr=False, default=None)
    #: Live rank processes (for deadlocked-world kicks).
    procs: list = field(repr=False, default_factory=list)
    # -- resilience (all inert unless the scheduler is armed) ---------------
    #: Retry policy (:class:`~repro.sched.resilience.RetryPolicy`);
    #: None on a resilience-off fleet - the job fails terminally.
    retry: Any = field(repr=False, default=None)
    #: Simulated-seconds SLO measured from ``submit_at``; None = none.
    deadline: Optional[float] = None
    #: Completed retries so far (0 on the first attempt).
    attempt: int = 0
    #: True once ``max_attempts`` is exhausted: the job keeps its last
    #: failure's exit code and is never retried again.
    poisoned: bool = False
    #: Simulated time of the first failed attempt (MTTR baseline).
    first_failed_at: Optional[float] = None
    #: Set by the deadline watchdog; the runner raises it at the next
    #: epoch boundary instead of retrying.
    killed: Optional[BaseException] = field(repr=False, default=None)
    #: Devices blamed for this attempt's rank failures (drained into
    #: the fleet's DeviceHealthMonitor when the attempt ends).
    fault_devices: list = field(repr=False, default_factory=list)
    #: Persisted fault runtime (injector + checkpoint store) carried
    #: across retry attempts for checkpoint-resume determinism.
    faults_rt: Any = field(repr=False, default=None)
    #: Logical->physical node remap chosen at admission to dodge
    #: quarantined devices; None = identity.
    node_map: Optional[list] = None

    @property
    def done(self) -> bool:
        return self.status.terminal

    @property
    def exit_code(self) -> int:
        """CLI-style exit code: 0 for success, else the per-class code
        of :func:`repro.errors.exit_code_for` (rejections carry an
        :class:`~repro.errors.AdmissionError`, code 15)."""
        if self.status is JobStatus.DONE:
            return 0
        if self.error is not None:
            return exit_code_for(self.error)
        return 1

    @property
    def queue_wait(self) -> float:
        """Seconds between arrival and start (0 for unstarted jobs)."""
        if self.started_at is None or self.submitted_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def elapsed(self) -> float:
        """Running time (start to finish), excluding queueing."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def latency(self) -> float:
        """End-to-end: arrival to finish (what a tenant experiences)."""
        if self.finished_at is None or self.submitted_at is None:
            return 0.0
        return self.finished_at - self.submitted_at

    def report(self) -> "JobReport":
        return JobReport(
            job_id=self.job_id,
            name=self.name,
            status=self.status.value,
            exit_code=self.exit_code,
            error=None if self.error is None else f"{type(self.error).__name__}: {self.error}",
            reason=self.reason,
            priority=self.priority,
            weight=self.weight,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            queue_wait=self.queue_wait,
            elapsed=self.elapsed,
            latency=self.latency,
            restarts=self.restarts,
            variant=None if self.rp is None else self.rp.var.value,
            n=None if self.rp is None else self.rp.n,
            attempts=self.attempt + 1,
            poisoned=self.poisoned,
        )


@dataclass(frozen=True)
class JobReport:
    """The durable record of one job (also for failed/rejected ones)."""

    job_id: int
    name: str
    status: str
    exit_code: int
    error: Optional[str]
    reason: Optional[str]
    priority: int
    weight: float
    submitted_at: Optional[float]
    started_at: Optional[float]
    finished_at: Optional[float]
    queue_wait: float
    elapsed: float
    latency: float
    restarts: int
    variant: Optional[str]
    n: Optional[int]
    #: Runs executed (1 = no retries); see the resilience layer.
    attempts: int = 1
    poisoned: bool = False

    def as_dict(self) -> dict:
        import dataclasses

        return dataclasses.asdict(self)


class JobHandle:
    """The caller's view of a submitted job: poll, await, result.

    ``wait()`` *drives* the shared simulation (it is single-threaded
    simulated time, not wall-clock), so the first handle awaited runs
    every concurrently admitted job along the way.
    """

    def __init__(self, scheduler, job: Job):
        self._scheduler = scheduler
        self._job = job

    @property
    def job_id(self) -> int:
        return self._job.job_id

    @property
    def name(self) -> str:
        return self._job.name

    @property
    def status(self) -> JobStatus:
        return self._job.status

    @property
    def done(self) -> bool:
        return self._job.done

    def poll(self) -> JobStatus:
        """Current status without advancing simulated time."""
        return self._job.status

    def wait(self) -> JobReport:
        """Run the simulation until this job reaches a terminal state."""
        self._scheduler.run(until_job=self._job)
        return self._job.report()

    def result(self):
        """The job's :class:`~repro.core.driver.ApspResult`; runs the
        simulation if needed and re-raises the job's failure."""
        if not self._job.done:
            self.wait()
        if self._job.error is not None:
            raise self._job.error
        return self._job.result

    def report(self) -> JobReport:
        return self._job.report()

    def __await__(self):
        self.wait()
        return self.result()
        yield  # pragma: no cover - makes __await__ a generator
