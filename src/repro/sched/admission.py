"""Admission control: decide *before* a job touches the machine.

The controller prices a job from its resolved
:class:`~repro.core.driver.RunPlan` alone - the same per-rank HBM/DRAM
formulas the driver's state builders charge, evaluated symbolically -
plus the §3.4 performance model for makespan, so decisions need zero
simulated events:

* **admit** - the job's per-GPU/per-node demand fits next to what is
  already reserved;
* **queue** - it fits an idle fleet but not the current residency
  (retry on every job completion);
* **reject** - it can never fit this fleet, or Eq. 1 predicts it would
  blow the configured makespan limit
  (:class:`~repro.errors.AdmissionError`, exit code 15).

:func:`assess` is the shape-level what-if used for capacity planning
(``examples/capacity_planning.py``): no graph required, so the paper's
300k-vertex / 10 TB configurations can be priced without allocating a
matrix.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..machine.cost import CostModel
from ..machine.spec import MachineSpec

__all__ = ["AdmissionController", "Assessment", "JobDemand", "assess", "demand_of"]


@dataclass(frozen=True)
class JobDemand:
    """A job's static memory footprint on the shared fleet."""

    #: (node, gpu_index) -> HBM bytes (virtual), mirroring the driver's
    #: per-rank charges in :func:`repro.core.driver.make_state_builders`.
    gpu_bytes: dict
    #: node -> host DRAM bytes (offload variants only).
    dram_bytes: dict

    def peak_gpu(self) -> int:
        return max(self.gpu_bytes.values(), default=0)


def demand_of(rp, cost: CostModel, gpus_per_node: int) -> JobDemand:
    """Price a :class:`~repro.core.driver.RunPlan`'s memory demand.

    Must stay formula-for-formula identical to the charges in
    :func:`~repro.core.driver.make_state_builders` /
    :func:`~repro.core.executor.offload_gpu_footprint` (pinned by
    ``tests/test_sched.py``), or admission would admit jobs the builder
    then OOMs on.
    """
    cfg = rp.config
    b = rp.b
    gpu: dict = defaultdict(int)
    dram: dict = defaultdict(int)
    for r in range(rp.n_ranks):
        rows = len(rp.grid.local_block_rows(r, rp.nb))
        cols = len(rp.grid.local_block_cols(r, rp.nb))
        node = rp.placement.node_of(r)
        g = rp.placement.local_index(r) % gpus_per_node
        if cfg.offload:
            dram[node] += int(cost.bytes_of(rows * b, cols * b))
            footprint = (
                cost.gpu_bytes(b * rows, b)
                + cost.gpu_bytes(b, b * cols)
                + cost.gpu_bytes(b, b)
                + cfg.n_streams * cost.gpu_bytes(b * cfg.mx_blocks, b * cfg.nx_blocks)
            )
        else:
            footprint = (
                cost.gpu_bytes(rows * b, cols * b)
                + cost.gpu_bytes(b, cols * b)
                + cost.gpu_bytes(rows * b, b)
                + cost.gpu_bytes(b, b)
            )
            if cfg.track_paths:
                footprint *= 3
        gpu[(node, g)] += int(footprint)
    return JobDemand(gpu_bytes=dict(gpu), dram_bytes=dict(dram))


class AdmissionController:
    """Reservation ledger + admit/queue/reject policy of one fleet."""

    def __init__(
        self,
        machine: MachineSpec,
        n_nodes: int,
        cost: CostModel,
        makespan_limit: Optional[float] = None,
    ):
        self.machine = machine
        self.n_nodes = n_nodes
        self.cost = cost
        #: Reject any job whose *predicted* makespan (Eq. 1 / Eq. 6)
        #: exceeds this many simulated seconds; None disables the SLO.
        self.makespan_limit = makespan_limit
        self.hbm_capacity = machine.node.gpu.hbm_bytes
        self.dram_capacity = machine.node.dram_bytes
        self.gpus_per_node = machine.node.gpus_per_node
        self._reserved_gpu: dict = defaultdict(int)
        self._reserved_dram: dict = defaultdict(int)

    # -- pricing -------------------------------------------------------------
    def demand_of(self, rp) -> JobDemand:
        return demand_of(rp, self.cost, self.gpus_per_node)

    def predict_makespan(self, rp) -> float:
        """Eq. 1 (with the §3.4.1 refinement) for the job's shape."""
        from ..perfmodel import predict_runtime

        ranks_per_node = rp.placement.ranks_per_node
        gpus_share = max(1, ranks_per_node // self.gpus_per_node)
        return predict_runtime(
            self.cost,
            self.cost.v(rp.n),
            rp.b,
            rp.grid.pr,
            rp.grid.pc,
            q_r=rp.placement.qr,
            q_c=rp.placement.qc,
            gpus_share=gpus_share,
        ).total

    # -- policy --------------------------------------------------------------
    def check(self, rp, node_map=None) -> tuple[str, Optional[str], JobDemand]:
        """Classify a run plan: ``("admit" | "queue" | "reject",
        reason, demand)``.  Does not reserve anything.

        ``node_map`` is the scheduler's logical->physical node remap
        (resilience layer): demand is charged against the nodes the job
        will *actually* run on, so the reservation ledger and the
        runner's device bindings always agree."""
        demand = self.demand_of(rp)
        if node_map is not None:
            demand = JobDemand(
                gpu_bytes={
                    (node_map[node], g): nbytes
                    for (node, g), nbytes in demand.gpu_bytes.items()
                },
                dram_bytes={
                    node_map[node]: nbytes
                    for node, nbytes in demand.dram_bytes.items()
                },
            )
        if rp.n_nodes > self.n_nodes:
            return ("reject", f"needs {rp.n_nodes} nodes, fleet has {self.n_nodes}", demand)
        for (node, g), nbytes in demand.gpu_bytes.items():
            if nbytes > self.hbm_capacity:
                return (
                    "reject",
                    f"rank demand {nbytes} B on node{node}.gpu{g} exceeds HBM "
                    f"capacity {self.hbm_capacity} B even when idle",
                    demand,
                )
        for node, nbytes in demand.dram_bytes.items():
            if nbytes > self.dram_capacity:
                return (
                    "reject",
                    f"offload demand {nbytes} B on node{node} exceeds DRAM "
                    f"capacity {self.dram_capacity} B even when idle",
                    demand,
                )
        if self.makespan_limit is not None:
            predicted = self.predict_makespan(rp)
            if predicted > self.makespan_limit:
                return (
                    "reject",
                    f"predicted makespan {predicted:.3g}s exceeds the "
                    f"{self.makespan_limit:.3g}s limit",
                    demand,
                )
        for (node, g), nbytes in demand.gpu_bytes.items():
            if self._reserved_gpu[(node, g)] + nbytes > self.hbm_capacity:
                return (
                    "queue",
                    f"node{node}.gpu{g} oversubscribed "
                    f"({self._reserved_gpu[(node, g)]} B reserved)",
                    demand,
                )
        for node, nbytes in demand.dram_bytes.items():
            if self._reserved_dram[node] + nbytes > self.dram_capacity:
                return (
                    "queue",
                    f"node{node} DRAM oversubscribed "
                    f"({self._reserved_dram[node]} B reserved)",
                    demand,
                )
        return ("admit", None, demand)

    # -- ledger --------------------------------------------------------------
    def reserve(self, demand: JobDemand) -> None:
        for key, nbytes in demand.gpu_bytes.items():
            self._reserved_gpu[key] += nbytes
        for node, nbytes in demand.dram_bytes.items():
            self._reserved_dram[node] += nbytes

    def release(self, demand: JobDemand) -> None:
        for key, nbytes in demand.gpu_bytes.items():
            self._reserved_gpu[key] -= nbytes
        for node, nbytes in demand.dram_bytes.items():
            self._reserved_dram[node] -= nbytes

    def reserved_gpu_bytes(self) -> int:
        return sum(self._reserved_gpu.values())


@dataclass(frozen=True)
class Assessment:
    """Shape-level what-if: can this fleet run this problem, and how?"""

    n: float
    n_nodes: int
    ranks_per_node: int
    #: ``"fits-hbm"`` | ``"needs-offload"`` | ``"infeasible"``.
    feasibility: str
    #: Recommended variant for the feasibility class.
    variant: str
    #: Tuner-recommended block size (offload floor applied when needed).
    block_size: int
    #: Eq. 1 / Eq. 6 predicted makespan in seconds (None if infeasible).
    predicted_makespan: Optional[float]
    #: Eq. 1 terms for the recommended configuration.
    compute_seconds: float
    bandwidth_seconds: float
    matrix_bytes: float
    hbm_total: float
    dram_total: float

    @property
    def feasible(self) -> bool:
        return self.feasibility != "infeasible"

    def summary(self) -> str:
        head = (
            f"n={self.n:,.0f} on {self.n_nodes} nodes x {self.ranks_per_node} ranks: "
            f"{self.feasibility}"
        )
        if not self.feasible:
            return head + (
                f" (matrix {self.matrix_bytes / 1e12:.2f} TB > DRAM "
                f"{self.dram_total / 1e12:.2f} TB)"
            )
        regime = (
            "compute-bound" if self.compute_seconds > self.bandwidth_seconds
            else "bandwidth-bound"
        )
        return head + (
            f" -> variant={self.variant}, b={self.block_size}, predicted "
            f"{self.predicted_makespan:.2f}s ({regime})"
        )


def assess(
    n: float,
    n_nodes: int,
    ranks_per_node: int = 12,
    machine: Optional[MachineSpec] = None,
    dim_scale: float = 1.0,
    headroom: float = 0.8,
) -> Assessment:
    """Price a problem *shape* against a fleet shape (no graph needed).

    Applies the paper's feasibility ladder: under ``headroom`` x
    aggregate HBM use Co-ParallelFw; under ``headroom`` x aggregate
    DRAM use Me-ParallelFw with the Eq. 5 block-size floor; beyond
    that the fleet cannot hold the matrix at all.
    """
    from ..machine.spec import SUMMIT
    from ..perfmodel import min_offload_block_size, parallel_fw_cost, tune

    if machine is None:
        machine = SUMMIT
    cost = CostModel(machine, dim_scale=dim_scale)
    matrix_bytes = float(n) * float(n) * cost.itemsize
    hbm_total = n_nodes * machine.node.gpus_per_node * machine.node.gpu.hbm_bytes
    dram_total = n_nodes * machine.node.dram_bytes

    if matrix_bytes < headroom * hbm_total:
        feasibility, variant, offload = "fits-hbm", "async", False
    elif matrix_bytes < headroom * dram_total:
        feasibility, variant, offload = "needs-offload", "offload", True
    else:
        feasibility, variant, offload = "infeasible", "none", False

    report = tune(cost, n, n_nodes, ranks_per_node, offload=offload)
    block_size = report.block_size
    if offload:
        block_size = max(block_size, int(min_offload_block_size(cost)))
    gpus_share = max(1, ranks_per_node // machine.node.gpus_per_node)
    br = parallel_fw_cost(cost, n, block_size, report.p_r, report.p_c,
                          gpus_share=gpus_share)
    return Assessment(
        n=float(n),
        n_nodes=n_nodes,
        ranks_per_node=ranks_per_node,
        feasibility=feasibility,
        variant=variant,
        block_size=block_size,
        predicted_makespan=None if feasibility == "infeasible" else report.predicted.total,
        compute_seconds=br.compute,
        bandwidth_seconds=br.bandwidth,
        matrix_bytes=matrix_bytes,
        hbm_total=float(hbm_total),
        dram_total=float(dram_total),
    )
