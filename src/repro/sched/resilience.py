"""Fleet self-healing: retry policies and the resilience runtime.

PR 8's scheduler treats every fault as terminal: a crash, OOM or comm
timeout fails the job with an exit code and the fleet never heals.
This module is the layer between the scheduler, the fault injector and
the runner that turns every fault class the chaos machinery can inject
into something the fleet survives:

* a per-job :class:`RetryPolicy` re-admits failed jobs through the
  existing admission controller - deterministic seeded exponential
  backoff + jitter, a per-job attempt cap, and a fleet-wide retry
  budget so one pathological tenant cannot monopolize recovery
  capacity;
* re-admission is **checkpoint-carrying**: the job's persisted
  :class:`~repro.faults.CheckpointStore` rides along on the
  :class:`~repro.sched.job.Job`, and the retry resumes from the newest
  CRC-valid consistent cut (the free ``k=0`` snapshot at worst) instead
  of recomputing from scratch - the Spark-APSP shape of re-executing
  failed block work from materialized intermediate state;
* when quarantines (:mod:`repro.sched.health`) shrink the healthy
  fleet below the job's planned node count, the scheduler re-runs the
  :func:`~repro.sched.admission.assess` feasibility ladder and
  re-plans the job onto a smaller grid - or the offload variant - via
  :func:`replan_config`, rather than rejecting it;
* a job that exhausts ``max_attempts`` is **poisoned**: it keeps its
  last failure's exit code and is never retried again.

Determinism contract: a retried job's distance matrix is bit-identical
to its clean solo solve (the blocked FW sweep restarted from a
consistent cut replays the same (min,+) operand sequence; see
:mod:`repro.faults.checkpoint`), and with resilience disarmed the
scheduler takes zero extra simulated events - every PR-8 recording
stays bit- and makespan-exact (pinned in ``tests/test_resilience.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .health import DeviceHealthMonitor, HealthPolicy, gpu_device, nic_device

__all__ = [
    "FleetResilience",
    "ResiliencePolicy",
    "RetryPolicy",
    "failed_devices",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How one job's failures are retried.

    Backoff for retry attempt ``a`` (1-based) is::

        backoff_base * backoff_factor**(a - 1) * (1 + jitter * u)

    with ``u`` drawn from ``default_rng((seed, job_id, a))`` - fully
    deterministic per (seed, job, attempt), so a replayed fleet backs
    off at the exact same simulated times.
    """

    #: Total runs a job may use (first attempt included); 1 = no retry.
    max_attempts: int = 3
    #: First retry's base delay in simulated seconds.
    backoff_base: float = 0.005
    #: Exponential growth per further attempt.
    backoff_factor: float = 2.0
    #: Jitter fraction in [0, 1]: the delay is stretched by up to this
    #: much (decorrelates retries of jobs felled by the same fault).
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if not _is_int(self.max_attempts) or self.max_attempts < 1:
            raise ConfigurationError(
                f"retry max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        if not _is_num(self.backoff_base) or self.backoff_base < 0:
            raise ConfigurationError(
                f"retry backoff_base must be a number >= 0, got {self.backoff_base!r}"
            )
        if not _is_num(self.backoff_factor) or self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"retry backoff_factor must be a number >= 1, got {self.backoff_factor!r}"
            )
        if not _is_num(self.jitter) or not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"retry jitter must be a number in [0, 1], got {self.jitter!r}"
            )
        if not _is_int(self.seed) or self.seed < 0:
            raise ConfigurationError(
                f"retry seed must be an int >= 0, got {self.seed!r}"
            )

    def delay(self, job_id: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (1-based)."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        u = float(np.random.default_rng((self.seed, job_id, attempt)).uniform())
        return base * (1.0 + self.jitter * u)

    # -- spec round-trip ----------------------------------------------------
    _KEYS = ("max_attempts", "backoff_base", "backoff_factor", "jitter", "seed")

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": float(self.backoff_base),
            "backoff_factor": float(self.backoff_factor),
            "jitter": float(self.jitter),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RetryPolicy":
        if not isinstance(raw, dict):
            raise ConfigurationError(f"retry policy must be an object, got {raw!r}")
        unknown = set(raw) - set(cls._KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown retry policy keys {sorted(unknown)}; known: {list(cls._KEYS)}"
            )
        kwargs = dict(raw)
        for key in ("backoff_base", "backoff_factor", "jitter"):
            if key in kwargs:
                value = kwargs[key]
                if not _is_num(value):
                    raise ConfigurationError(
                        f"retry {key} must be a number, got {value!r}"
                    )
                kwargs[key] = float(value)
        return cls(**kwargs)


@dataclass(frozen=True)
class ResiliencePolicy:
    """The fleet-level self-healing configuration: the default per-job
    retry policy, the device health/quarantine policy, and the
    fleet-wide retry budget."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    health: HealthPolicy = field(default_factory=HealthPolicy)
    #: Total retries the whole fleet may spend (across all jobs).
    retry_budget: int = 32

    def __post_init__(self):
        if not isinstance(self.retry, RetryPolicy):
            raise ConfigurationError(
                f"resilience retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if not isinstance(self.health, HealthPolicy):
            raise ConfigurationError(
                f"resilience health must be a HealthPolicy, got {type(self.health).__name__}"
            )
        if not _is_int(self.retry_budget) or self.retry_budget < 0:
            raise ConfigurationError(
                f"resilience retry_budget must be an int >= 0, got {self.retry_budget!r}"
            )

    # -- spec round-trip ----------------------------------------------------
    _KEYS = ("retry", "health", "retry_budget")

    def to_dict(self) -> dict:
        return {
            "retry": self.retry.to_dict(),
            "health": self.health.to_dict(),
            "retry_budget": self.retry_budget,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ResiliencePolicy":
        if not isinstance(raw, dict):
            raise ConfigurationError(f"resilience policy must be an object, got {raw!r}")
        unknown = set(raw) - set(cls._KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown resilience policy keys {sorted(unknown)}; "
                f"known: {list(cls._KEYS)}"
            )
        kwargs: dict = {}
        if "retry" in raw:
            kwargs["retry"] = RetryPolicy.from_dict(raw["retry"])
        if "health" in raw:
            kwargs["health"] = HealthPolicy.from_dict(raw["health"])
        if "retry_budget" in raw:
            kwargs["retry_budget"] = raw["retry_budget"]
        return cls(**kwargs)


class FleetResilience:
    """One fleet's live self-healing state: the policy, the device
    health monitor, and the spent retry budget."""

    def __init__(self, policy: Optional[ResiliencePolicy] = None):
        self.policy = policy or ResiliencePolicy()
        self.monitor = DeviceHealthMonitor(self.policy.health)
        self.retries_spent = 0

    def budget_left(self) -> int:
        return max(0, self.policy.retry_budget - self.retries_spent)


def failed_devices(rp, failures, gpus_per_node: int, node_map=None) -> list:
    """Attribute one epoch's rank failures to physical devices.

    Crash / OOM / SDC / plain-bug failures strike the failing rank's
    GPU.  Comm timeouts blame the rank's node NIC (the transport, not
    the compute) - but only when *every* failure this epoch is a
    timeout: a dead peer makes the surviving ranks time out too, and
    those collateral timeouts must not quarantine innocent NICs.
    ``node_map`` is the job's logical->physical node remap, so the
    scoreboard always records the device the rank actually ran on.
    """
    primary = [r for r in sorted(failures) if _is_primary(failures[r])]
    devices = []
    if primary:
        ranks, blame_nic = primary, False
    else:
        ranks = [r for r in sorted(failures) if failures[r][0] == "timeout"]
        blame_nic = True
    for rank in ranks:
        node = rp.placement.node_of(rank)
        if node_map is not None:
            node = node_map[node]
        if blame_nic:
            devices.append(nic_device(node))
        else:
            devices.append(gpu_device(node, rp.placement.local_index(rank) % gpus_per_node))
    return devices


def _is_primary(st) -> bool:
    """Is this (kind, exc) rank status a root-cause GPU fault?

    OOM / SDC / plain-bug statuses always are.  "crashed" statuses are
    Interrupts: the injector's crash watchdog interrupts with a
    :class:`~repro.errors.RankFailure` carrying ``rank=``, while the
    grace reaper's collateral kill of stalled peers carries none - only
    the former blames the rank's GPU."""
    kind, exc = st
    if kind == "timeout":
        return False
    if kind != "crashed":
        return True
    cause = getattr(exc, "cause", None)
    return getattr(cause, "rank", None) is not None


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
