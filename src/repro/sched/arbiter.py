"""Weighted fair-share arbitration for contended simulated resources.

Every shared :class:`~repro.sim.resources.Resource` of the cluster
(NIC, intranode channel, GPU engines) normally grants waiters FIFO.
The scheduler installs a :class:`FairShareArbiter` on each of them so
that, under contention, the next grant goes to the job with the lowest
*virtual time* - service received divided by its effective weight -
which is the classic weighted-fair-queueing rule:

* a job's effective weight is ``weight * 2**priority``, so priority
  buys a larger bandwidth share rather than absolute preemption;
* every job's virtual time advances whenever it consumes a resource,
  so a backlogged low-priority job is always *eventually* the minimum
  and cannot starve (pinned by ``tests/test_sched.py``);
* jobs registered late start at the current minimum virtual time, so
  a newcomer cannot monopolize resources to "catch up" on service it
  never requested.

With a single registered job the arbiter degenerates to exact FIFO
(every waiter shares one virtual time; ties break on queue order), so
degenerate one-job schedules reproduce the unscheduled event order
bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["FairShareArbiter"]


class FairShareArbiter:
    """Priority-aware weighted fair-share policy over request scopes.

    A *scope* is whatever object tags a request's owner - the scheduler
    uses the :class:`~repro.sched.job.Job`.  Requests whose scope was
    never registered (or is ``None``) are served at virtual time 0 with
    FIFO tie-breaking, i.e. ahead of anything backlogged.
    """

    def __init__(self) -> None:
        #: scope -> [effective_weight, virtual_time]
        self._shares: dict[object, list[float]] = {}

    def register(self, scope: object, priority: int = 0, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"fair-share weight must be positive, got {weight}")
        eff = float(weight) * (2.0 ** priority)
        start = min((s[1] for s in self._shares.values()), default=0.0)
        self._shares[scope] = [eff, start]

    def unregister(self, scope: object) -> None:
        self._shares.pop(scope, None)

    def vtime(self, scope: object) -> float:
        share = self._shares.get(scope)
        return share[1] if share is not None else 0.0

    def charge(self, scope: object, duration: float) -> None:
        """Account ``duration`` seconds of service to ``scope``."""
        share = self._shares.get(scope)
        if share is not None:
            share[1] += duration / share[0]

    def select(self, waiting: Iterable):
        """Pick the next request to grant: minimum owner virtual time,
        FIFO among equals.  ``waiting`` is the resource's request deque
        (never empty when called)."""
        best = None
        best_key: Optional[tuple[float, int]] = None
        for idx, req in enumerate(waiting):
            key = (self.vtime(getattr(req, "scope", None)), idx)
            if best_key is None or key < best_key:
                best, best_key = req, key
        return best
