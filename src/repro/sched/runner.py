"""The per-job runtime: one coroutine that runs a whole solve.

:func:`job_process` is the scheduled-world counterpart of the driver's
``apsp()`` body and ``_run_with_recovery`` epoch loop, rewritten as a
*process on the shared environment*: it can never call ``env.run()``
(other jobs own events on the same heap), so epoch completion is an
event all supervised rank programs count down on, and world-failure
detection uses a grace timer instead of heap exhaustion.

Isolation contract (pinned by ``tests/test_sched.py``):

* every rank program runs supervised - any exception, including
  injected :class:`~repro.sim.engine.Interrupt` crashes and plain
  bugs, becomes a per-rank status, never an unhandled process failure
  that would abort the fleet's ``env.run()``;
* a job's :class:`~repro.faults.FaultInjector` is attached to the
  job's private :class:`~repro.mpi.comm.SimMPI` only - the shared
  ``cluster.injector`` slot stays ``None`` - so message drop /
  duplication / corruption / NIC-degradation windows never touch a
  concurrent job's traffic;
* a crash or OOM that exhausts the job's restart budget fails *that
  job* with its per-class exit code; concurrent jobs' numerics are
  bit-exact with their solo runs.

Deliberate non-isolation: an injected *straggler* raises the shared
GPU's ``compute_multiplier`` - device-level throttling outlives the
job that triggered it, exactly like thermal throttling on real
hardware would.
"""

from __future__ import annotations

from ..core.context import FwContext
from ..core.driver import _degrade_to_offload, build_result, make_state_builders
from ..core.programs import program_for_config
from ..errors import (
    CheckpointError,
    CommTimeoutError,
    GpuOutOfMemory,
    RankFailure,
    SilentCorruptionError,
)
from ..faults import CheckpointStore, FaultInjector, FaultRuntime
from ..mpi.comm import SimMPI
from ..sim.engine import Event, Interrupt
from ..sim.trace import ScopedTracer
from .job import JobStatus

__all__ = ["job_process"]


def job_process(scheduler, job):
    """Generator (a simulated process): run ``job`` start to finish.

    Always leaves the job in a terminal state and notifies the
    scheduler, which releases the reservation and retries the queue.
    """
    env = scheduler.env
    job.status = JobStatus.RUNNING
    job.started_at = env.now
    try:
        yield from _run_job(scheduler, job)
        job.status = JobStatus.DONE
    except Exception as exc:  # noqa: BLE001 - the job's failure is the job's alone
        job.error = exc
        job.status = JobStatus.FAILED
        if job.finished_at is None:
            job.finished_at = env.now
    finally:
        job.procs = []
        scheduler._on_job_finished(job)


def _run_job(scheduler, job):
    rp = job.rp
    handles = scheduler.handles
    env = handles.env
    fleet_tracer = handles.tracer
    tracer = (
        ScopedTracer(fleet_tracer, f"{job.name}.") if fleet_tracer is not None else None
    )
    node_map = job.node_map
    nodes = [rp.placement.node_of(r) for r in range(rp.n_ranks)]
    if node_map is not None:
        # Resilience remap: the attempt runs on healthy physical nodes,
        # not the (possibly quarantined) ones the placement names.
        nodes = [node_map[n] for n in nodes]
    mpi = SimMPI(env, handles.cluster, nodes, tracer)
    ctx = FwContext(env, handles.cluster, mpi, rp.grid, rp.placement, rp.config,
                    rp.nb, tracer)
    ctx.node_map = node_map
    config = rp.config
    if config.verify != "off":
        from ..verify import ChecksummedBackend, VerifyRuntime

        ctx.verify = VerifyRuntime(
            config.verify, ctx.backend, semiring=rp.semiring, seed=rp.fault_seed
        )
        ctx.backend = ChecksummedBackend(ctx.verify)
    obs = None
    if job.config is not None and job.config.obs.enabled:
        from ..obs import MeteredBackend, MetricsRegistry

        obs = MetricsRegistry()
        ctx.obs = obs
        mpi.obs = obs
        ctx.backend = MeteredBackend(obs, ctx.backend)
    injector = None
    if rp.plan is not None:
        if job.faults_rt is not None:
            # Retry attempt: the persisted runtime carries the injector
            # (one-shot fault state - an nth-match or OOM that already
            # fired must not fire again) and the checkpoint store the
            # attempt resumes from.
            ctx.faults = job.faults_rt
            injector = ctx.faults.injector
            injector.tracer = tracer
            injector.attach(mpi)
            mpi.injector = injector
        else:
            injector = FaultInjector(rp.plan, tracer)
            injector.attach(mpi)
            # Fault isolation: the injector arms this job's transport
            # only.  cluster.injector stays None, so a NIC-degradation
            # window or a message fault can never leak into a
            # concurrent job's traffic.
            mpi.injector = injector
            ctx.faults = FaultRuntime(injector, CheckpointStore())
            if scheduler.resilience is not None:
                job.faults_rt = ctx.faults

    rp.distribute()
    build_states, teardown_states = make_state_builders(ctx, rp)

    if ctx.faults is None:
        states, end = yield from _run_clean(scheduler, job, ctx, rp, build_states,
                                            teardown_states)
        run_config = config
    else:
        states, end, run_config = yield from _run_epochs(
            scheduler, job, ctx, rp, injector, build_states, teardown_states,
        )

    job.finished_at = end
    try:
        job.result = build_result(
            ctx, rp, states, end - job.started_at, run_config,
            obs=obs, injector=injector, tracer=tracer,
        )
    finally:
        teardown_states(states)


def _spawn_epoch(scheduler, job, env, program, states, start_k=None):
    """Spawn every rank program supervised; returns (status, done_ev).

    ``done_ev`` fires once *every* rank has a status.  The first
    failure status arms a one-shot reaper that, after the scheduler's
    ``failure_grace``, interrupts the epoch's still-blocked ranks -
    the shared-world substitute for the single-job driver's "heap
    drained, interrupt the stuck" detection (a dead peer will never
    send, so blocked receives would otherwise hang the job forever
    without stalling the fleet).
    """
    n_ranks = len(states)
    status: dict[int, tuple[str, object]] = {}
    done_ev = Event(env)
    reaper_armed = [False]
    procs = []

    def reaper(grace):
        yield env.timeout(grace)
        if done_ev.triggered:
            return
        for p in procs:
            if p.is_alive:
                p.interrupt(RankFailure("rank stalled after peer failure"))

    def supervised(state):
        try:
            if start_k is None:
                yield from program(state)
            else:
                yield from program(state, start_k=start_k)
            status[state.me] = ("done", env.now)
        except Interrupt as exc:
            status[state.me] = ("crashed", exc)
        except CommTimeoutError as exc:
            status[state.me] = ("timeout", exc)
        except GpuOutOfMemory as exc:
            status[state.me] = ("oom", exc)
        except SilentCorruptionError as exc:
            status[state.me] = ("sdc", exc)
        except Exception as exc:  # noqa: BLE001 - isolation: bugs stay in-job
            status[state.me] = ("error", exc)
        if len(status) == n_ranks:
            if not done_ev.triggered:
                done_ev.succeed()
        elif status[state.me][0] != "done" and not reaper_armed[0]:
            reaper_armed[0] = True
            grace = scheduler.failure_grace
            plan = job.rp.plan
            if plan is not None and plan.recv_timeout:
                grace += plan.recv_timeout
            env.process(reaper(grace), name=f"{job.name}.reaper")

    procs.extend(
        env.process(supervised(state), name=f"rank{state.me}") for state in states
    )
    job.procs = procs
    return status, done_ev, procs


def _attribute_failures(scheduler, job, rp, failures):
    """Blame this epoch's rank failures on physical devices (resilience
    armed only; deadline kills are the watchdog's doing, not a device's)."""
    if scheduler.resilience is None or job.killed is not None:
        return
    from .resilience import failed_devices

    job.fault_devices.extend(
        failed_devices(
            rp, failures, scheduler.admission.gpus_per_node, job.node_map
        )
    )


def _epoch_error(failures):
    """The exception a failed epoch surfaces, most-specific first
    (mirrors the restart-budget re-raise in ``_run_with_recovery``)."""
    for st in failures.values():
        if isinstance(st[1], (SilentCorruptionError, CommTimeoutError, GpuOutOfMemory)):
            return st[1]
    for st in failures.values():
        if st[0] == "error":
            return st[1]
    return None


def _run_clean(scheduler, job, ctx, rp, build_states, teardown_states):
    """One un-armed epoch: no fault plan, so any failure is final."""
    env = ctx.env
    states = build_states(rp.config, rp.locals_, rp.nxt_locals)
    try:
        program = program_for_config(rp.config)
        status, done_ev, _ = _spawn_epoch(scheduler, job, env, program, states)
        yield done_ev
        if job.killed is not None:
            raise job.killed
        failures = {r: st for r, st in status.items() if st[0] != "done"}
        if failures:
            _attribute_failures(scheduler, job, rp, failures)
            exc = _epoch_error(failures)
            if exc is None:
                first = min(failures)
                exc = failures[first][1]
                if not isinstance(exc, Exception):
                    exc = RankFailure(f"rank {first} failed: {exc}")
            raise exc
    except BaseException:
        teardown_states(states)
        raise
    return states, max(st[1] for st in status.values())


def _run_epochs(scheduler, job, ctx, rp, injector, build_states, teardown_states):
    """The fault-armed epoch loop, shared-world edition.

    Logic mirrors :func:`repro.core.driver._run_with_recovery` step for
    step (free k=0 snapshot, restore, OOM degradation, crash
    watchdogs, restart budget, consistent-checkpoint selection, restore
    cost) with two substitutions: epoch completion is an event, and
    stuck-rank detection is the grace reaper of :func:`_spawn_epoch`.
    """
    env = ctx.env
    plan = rp.plan
    config = rp.config
    n_ranks = ctx.mpi.size
    rt = ctx.faults
    store = rt.store
    track_paths = config.track_paths
    locals_, nxt_locals = rp.locals_, rp.nxt_locals

    if not rt.resumed:
        for r in range(n_ranks):
            store.save(0, r, locals_[r], None if nxt_locals is None else nxt_locals[r])
            rt.last_saved[r] = 0

    run_config = config
    fired_crashes: set[int] = set()
    restarts = 0
    while True:
        if ctx.verify is not None:
            ctx.verify.begin_epoch()
        start_k = rt.start_k
        if restarts == 0 and not rt.resumed:
            blocks_by_rank = locals_
            nxt_by_rank = nxt_locals
        else:
            blocks_by_rank = [store.restore(start_k, r) for r in range(n_ranks)]
            nxt_by_rank = (
                [store.restore_nxt(start_k, r) for r in range(n_ranks)]
                if track_paths
                else None
            )
        try:
            states = build_states(run_config, blocks_by_rank, nxt_by_rank)
        except GpuOutOfMemory as oom_exc:
            if run_config.offload or not plan.oom_degrade:
                raise
            run_config = _degrade_to_offload(ctx, injector, config, oom_exc)
            states = build_states(run_config, blocks_by_rank, nxt_by_rank)
        for state in states:
            factor = injector.compute_factor(state.me)
            if factor != 1.0:
                state.gpu.compute_multiplier = max(state.gpu.compute_multiplier, factor)

        program = program_for_config(run_config)
        status, done_ev, procs = _spawn_epoch(
            scheduler, job, env, program, states, start_k=start_k
        )

        def crash_watchdog(idx, crash, proc):
            if crash.at > env.now:
                yield env.timeout(crash.at - env.now)
            if done_ev.triggered:
                return
            fired_crashes.add(idx)
            if proc.is_alive:
                injector.count("faults.crashes")
                proc.interrupt(
                    RankFailure(
                        f"rank {crash.rank} lost at t={env.now:.6g}",
                        rank=crash.rank,
                        at=env.now,
                    )
                )

        watchdogs = []
        for idx, crash in enumerate(plan.crashes):
            if idx in fired_crashes or crash.at < env.now:
                continue
            watchdogs.append(
                env.process(crash_watchdog(idx, crash, procs[crash.rank]),
                            name=f"crash@r{crash.rank}")
            )

        yield done_ev

        if job.killed is not None:
            for wd in watchdogs:
                if wd.is_alive:
                    wd.defuse()
                    wd.interrupt()
            for state in states:
                for ev in state.pending:
                    if getattr(ev, "is_alive", False):
                        ev.defuse()
                        ev.interrupt()
            teardown_states(states)
            raise job.killed

        if all(st[0] == "done" for st in status.values()):
            return states, max(st[1] for st in status.values()), run_config

        # ---- failure: tear the epoch down and restart -------------------
        restarts += 1
        job.restarts = restarts
        failures = {r: st for r, st in status.items() if st[0] != "done"}
        _attribute_failures(scheduler, job, rp, failures)
        if restarts > plan.max_restarts:
            exc = _epoch_error(failures)
            teardown_states(states)
            if exc is not None:
                raise exc
            raise RankFailure(
                f"world failed {restarts} times (restart budget {plan.max_restarts}); "
                f"failed ranks: {sorted(failures)}"
            )
        injector.count("faults.restarts")

        oom_failures = [st[1] for st in failures.values() if st[0] == "oom"]
        if oom_failures and not run_config.offload:
            if not plan.oom_degrade:
                teardown_states(states)
                raise oom_failures[0]
            run_config = _degrade_to_offload(ctx, injector, config, oom_failures[0])

        for wd in watchdogs:
            if wd.is_alive:
                wd.defuse()
                wd.interrupt()
        for state in states:
            for ev in state.pending:
                if getattr(ev, "is_alive", False):
                    ev.defuse()
                    ev.interrupt()
        # Let the interrupts land (the single-job driver drains the
        # whole heap here; on a shared heap a zero-length timeout yields
        # just past the urgent interrupt deliveries at this timestamp).
        yield env.timeout(0.0)

        k0 = store.consistent_k(n_ranks)
        if store.crc_rejections:
            injector.counters["faults.crc_rejections"] = float(store.crc_rejections)
        if k0 is None:  # pragma: no cover - the k=0 snapshot always exists
            teardown_states(states)
            raise CheckpointError("no consistent checkpoint to restart from")
        progress = max((state.cur_k for state in states), default=-1)
        injector.count("faults.replayed_iters", max(0, progress - k0))
        teardown_states(states)
        injector.reset_world()
        rt.start_k = k0
        for r in range(n_ranks):
            rt.last_saved[r] = max(rt.last_saved.get(r, 0), k0)
        restore_cost = 0.0
        for state in states:
            rows = len(state.local_rows())
            cols = len(state.local_cols())
            dur = ctx.cost.checkpoint_time(rows * ctx.b, cols * ctx.b)
            if track_paths:
                dur *= 3
            restore_cost = max(restore_cost, dur)
        yield env.timeout(restore_cost)
        injector.count("faults.restore_time", restore_cost)
