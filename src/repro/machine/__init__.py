"""Simulated machine model: specs, costs, GPUs, hosts, nodes, cluster.

This is the hardware substrate the distributed Floyd-Warshall variants
run on.  Constants default to the paper's testbed (Summit, §5.1.1) and
every cost charged during simulation is derived from
:class:`~repro.machine.cost.CostModel`.
"""

from .cluster import SimCluster, SimNode
from .cost import DEFAULT_ITEMSIZE, CostModel
from .gpu import CudaStream, SimGPU
from .host import HostCpu
from .spec import (
    FRONTIER_LIKE,
    FRONTIER_NODE,
    MACHINES,
    MI250X_GCD,
    PCIE_GPU,
    SUMMIT,
    SUMMIT_NODE,
    V100,
    WORKSTATION,
    GpuSpec,
    MachineSpec,
    NodeSpec,
    scaled_down,
)

__all__ = [
    "SimCluster",
    "SimNode",
    "CostModel",
    "DEFAULT_ITEMSIZE",
    "SimGPU",
    "CudaStream",
    "HostCpu",
    "GpuSpec",
    "NodeSpec",
    "MachineSpec",
    "V100",
    "SUMMIT",
    "SUMMIT_NODE",
    "FRONTIER_LIKE",
    "FRONTIER_NODE",
    "MI250X_GCD",
    "PCIE_GPU",
    "WORKSTATION",
    "MACHINES",
    "scaled_down",
]
