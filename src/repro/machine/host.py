"""Simulated host side of a node: CPU work and DRAM bandwidth.

The offload algorithm's hostUpdate (``C ← C ⊕ X``) is DRAM-bandwidth
bound (paper §4.5: t2 = 3 m n t_m); a node's ranks share one DRAM
channel here just as they share memory controllers on Summit.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.engine import Environment
from ..sim.resources import Resource
from ..sim.trace import Tracer
from .cost import CostModel
from .spec import NodeSpec

__all__ = ["HostCpu"]


class HostCpu:
    """CPU + DRAM model of one node."""

    def __init__(
        self,
        env: Environment,
        spec: NodeSpec,
        cost: CostModel,
        name: str = "host0",
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.spec = spec
        self.cost = cost
        self.name = name
        self.tracer = tracer
        #: Serializes bandwidth-bound host memory operations.
        self.dram = Resource(env, 1, f"{name}.dram")
        self._dram_allocated = 0
        self.peak_dram = 0

    # -- memory accounting (host DRAM is what makes offload feasible) ------
    def alloc(self, nbytes: int, what: str = "host buffer") -> int:
        nbytes = int(nbytes)
        if self._dram_allocated + nbytes > self.spec.dram_bytes:
            raise MemoryError(
                f"{self.name}: host allocation of {nbytes} bytes for {what} exceeds "
                f"DRAM capacity {self.spec.dram_bytes}"
            )
        self._dram_allocated += nbytes
        self.peak_dram = max(self.peak_dram, self._dram_allocated)
        return nbytes

    def dealloc(self, nbytes: int) -> None:
        self._dram_allocated -= int(nbytes)

    # -- timed operations ----------------------------------------------------
    def host_update(
        self,
        rows: int,
        cols: int,
        label: str = "hostUpdate",
        fn: Optional[Callable[[], Any]] = None,
    ):
        """Generator: perform ``C ← C ⊕ X`` on an m x n tile.

        Charges 3 m n bytes of DRAM traffic (2 reads + 1 write) on the
        node's shared DRAM channel, then runs the real NumPy update.
        """
        duration = self.cost.host_update_time(rows, cols)
        yield from self.dram.use(duration)
        if self.tracer is not None:
            self.tracer.record(self.name, "hostUpdate", label, self.env.now - duration, self.env.now)
            self.tracer.add("hostUpdate.time", duration)
            self.tracer.add("hostUpdate.count")
        return fn() if fn is not None else None

    def fw_diag_host(
        self, b: int, label: str = "DiagUpdate(host)", fn: Optional[Callable[[], Any]] = None
    ):
        """Generator: classic Floyd-Warshall on a b x b block on the
        host CPU (the slow path the paper's §4.2 replaces with GPU
        squaring)."""
        duration = self.cost.diag_update_host_time(b)
        yield from self.dram.use(duration)
        if self.tracer is not None:
            self.tracer.record(self.name, "DiagUpdate", label, self.env.now - duration, self.env.now)
            self.tracer.add("DiagUpdate.host_time", duration)
        return fn() if fn is not None else None
