"""The simulated multi-GPU cluster: nodes, NICs and the interconnect.

Modeling choices (also recorded in DESIGN.md):

* Each node's NIC is a FIFO resource charged ``bytes / nic_bw`` per
  outgoing message.  Because *all ranks of a node share it*, the
  refined communication model of the paper's §3.4.1 (the
  ``n² Q_r / P_r`` terms) emerges from simulation rather than being
  assumed.  Receive-side occupancy is not separately modeled; the
  paper's analysis likewise counts data sent out of the NIC.
* Intranode messages never touch the NIC; they use a per-node
  shared-memory channel with its own (higher) bandwidth, which is why
  good rank placement (K_r ≈ K_c) reduces NIC traffic and single-node
  runs exceed the 25 GB/s line in Figure 3.
* Message delivery is sender-occupancy + latency; queues at the
  destination are unbounded (flow control happens at the NIC).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..sim.engine import Environment
from ..sim.resources import Resource
from ..sim.trace import Tracer
from .cost import CostModel
from .gpu import SimGPU
from .host import HostCpu
from .spec import MachineSpec

__all__ = ["SimNode", "SimCluster"]


class SimNode:
    """One node: GPUs + host + NIC + intranode channel."""

    def __init__(
        self,
        env: Environment,
        machine: MachineSpec,
        cost: CostModel,
        node_id: int,
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.spec = machine.node
        self.cost = cost
        self.node_id = node_id
        self.tracer = tracer
        self.nic_tx = Resource(env, 1, f"node{node_id}.nic")
        self.intra_channel = Resource(env, 1, f"node{node_id}.shm")
        #: Multiplier on this node's NIC transfer times (> 1 models a
        #: straggler: contended links, a slow adapter, a noisy
        #: neighbour - the §3.3 motivation for the asynchronous ring).
        self.nic_slowdown = 1.0
        self.gpus = [
            SimGPU(env, machine.node.gpu, cost, name=f"node{node_id}.gpu{g}", tracer=tracer)
            for g in range(machine.node.gpus_per_node)
        ]
        self.host = HostCpu(env, machine.node, cost, name=f"node{node_id}.host", tracer=tracer)
        #: Outgoing bytes (virtual) that crossed this node's NIC.
        self.nic_bytes_sent = 0.0
        #: Bytes that stayed on-node.
        self.intra_bytes_sent = 0.0


class SimCluster:
    """A homogeneous cluster of :class:`SimNode` objects."""

    def __init__(
        self,
        env: Environment,
        machine: MachineSpec,
        n_nodes: int,
        cost: Optional[CostModel] = None,
        tracer: Optional[Tracer] = None,
    ):
        if n_nodes < 1:
            raise ConfigurationError(f"need at least one node, got {n_nodes}")
        if n_nodes > machine.max_nodes:
            raise ConfigurationError(
                f"{machine.name} has {machine.max_nodes} nodes; {n_nodes} requested"
            )
        self.env = env
        self.machine = machine
        self.cost = cost if cost is not None else CostModel(machine)
        self.tracer = tracer
        self.nodes = [SimNode(env, machine, self.cost, i, tracer) for i in range(n_nodes)]
        #: Armed by the driver with a
        #: :class:`~repro.faults.injector.FaultInjector`; None keeps
        #: transfers on the zero-overhead path.
        self.injector = None

    def __len__(self) -> int:
        return len(self.nodes)

    def transfer(
        self,
        src_node: int,
        dst_node: int,
        nbytes_virtual: float,
        label: str = "msg",
        injector=None,
    ):
        """Generator: move a message between nodes (or within one).

        Completes when the message has been delivered; the caller (the
        MPI layer) then enqueues it at the destination rank.  Returns
        the simulated transfer duration (excluding queueing).

        ``injector`` scopes NIC-degradation windows to the calling
        job's fault injector; when omitted, the cluster-wide injector
        (armed by the single-job driver) applies.
        """
        node = self.nodes[src_node]
        if injector is None:
            injector = self.injector
        if src_node == dst_node:
            channel = node.intra_channel
            duration = self.cost.intranode_transfer_time(nbytes_virtual)
            latency = self.cost.intranode_latency
            node.intra_bytes_sent += nbytes_virtual
            category = "intra_xfer"
        else:
            channel = node.nic_tx
            duration = self.cost.internode_transfer_time(nbytes_virtual) * node.nic_slowdown
            if injector is not None:
                # NIC degradation window: bandwidth x factor over [t0, t1].
                duration *= injector.nic_factor(src_node, self.env.now)
            latency = self.cost.internode_latency
            node.nic_bytes_sent += nbytes_virtual
            category = "nic_xfer"
        yield from channel.use(duration)
        if self.tracer is not None:
            self.tracer.record(
                channel.name, category, label, self.env.now - duration, self.env.now
            )
            self.tracer.add(f"{category}.bytes", nbytes_virtual)
            self.tracer.add(f"{category}.count")
        yield self.env.timeout(latency)
        return duration

    def set_stragglers(self, slowdowns: dict[int, float]) -> None:
        """Mark nodes as stragglers: ``{node_id: factor}`` multiplies
        those nodes' NIC transfer times."""
        for node_id, factor in slowdowns.items():
            if factor <= 0:
                raise ConfigurationError(f"slowdown factor must be positive, got {factor}")
            self.nodes[node_id].nic_slowdown = float(factor)

    # -- cluster-wide statistics ------------------------------------------
    def total_nic_bytes(self) -> float:
        return sum(n.nic_bytes_sent for n in self.nodes)

    def max_nic_bytes(self) -> float:
        return max(n.nic_bytes_sent for n in self.nodes)
