"""Simulated GPU: HBM accounting, engines, and CUDA streams.

The model mirrors what the paper's offload scheme (§4.3-§4.4) relies
on in real hardware:

* one *kernel engine* - SrGemm kernels serialize on the device;
* independent *copy engines* for host-to-device and device-to-host, so
  transfers overlap kernels (and each other) exactly as cudaMemcpyAsync
  on separate streams would;
* *streams* - in-order queues of operations; operations on different
  streams overlap subject to engine availability;
* *HBM capacity accounting* - allocations are charged at virtual scale
  and overflow raises :class:`~repro.errors.GpuOutOfMemory`, which is
  the "Beyond GPU Memory" wall in the paper's Figure 7.

Every operation optionally carries a ``fn`` callback holding the real
NumPy computation; the simulation executes it when the operation
completes, so numerical results are exact while time is modeled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import GpuOutOfMemory
from ..sim.engine import Environment, Event
from ..sim.resources import Resource
from ..sim.trace import Tracer
from .cost import CostModel
from .spec import GpuSpec

__all__ = ["SimGPU", "CudaStream"]


class SimGPU:
    """One simulated GPU device (may be shared by several ranks, as on
    Summit where the paper runs 2 MPI ranks per GPU)."""

    def __init__(
        self,
        env: Environment,
        spec: GpuSpec,
        cost: CostModel,
        name: str = "gpu0",
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.spec = spec
        self.cost = cost
        self.name = name
        self.tracer = tracer
        self.kernel_engine = Resource(env, 1, f"{name}.kernel")
        self.h2d_engine = Resource(env, 1, f"{name}.h2d")
        self.d2h_engine = Resource(env, 1, f"{name}.d2h")
        self._allocated = 0
        self.peak_allocated = 0
        self._stream_count = 0
        #: Multiplier on kernel durations (> 1 models a straggler
        #: device: thermal throttling, a slow part, oversubscription).
        #: Set by the fault injector; applies to every stream on this
        #: device, including the offload pipeline's.
        self.compute_multiplier = 1.0

    # -- memory ----------------------------------------------------------
    @property
    def allocated(self) -> int:
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.spec.hbm_bytes - self._allocated

    def alloc(self, nbytes: int, what: str = "buffer") -> int:
        """Charge ``nbytes`` (virtual) of HBM; raise when over capacity."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation for {what}: {nbytes}")
        if self._allocated + nbytes > self.spec.hbm_bytes:
            raise GpuOutOfMemory(nbytes, self.free_bytes, self.spec.hbm_bytes, device=self.name)
        self._allocated += nbytes
        self.peak_allocated = max(self.peak_allocated, self._allocated)
        return nbytes

    def dealloc(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes > self._allocated:
            raise ValueError(f"freeing {nbytes} bytes but only {self._allocated} allocated")
        self._allocated -= nbytes

    # -- streams -----------------------------------------------------------
    def stream(self, name: Optional[str] = None, tracer: Optional[Tracer] = None) -> "CudaStream":
        """Create an in-order stream.  ``tracer`` overrides the device
        tracer for spans of this stream's ops - the scheduler passes a
        job-scoped tracer here so a shared GPU's engine spans land in
        per-job Perfetto lanes."""
        self._stream_count += 1
        return CudaStream(
            self, name or f"{self.name}.s{self._stream_count - 1}", tracer=tracer
        )


class CudaStream:
    """An in-order queue of GPU operations.

    Submissions return immediately with an :class:`Event` that fires
    when the operation completes, so a host process can keep issuing
    work (the cudaStream programming model the paper's §4.3 uses).
    """

    def __init__(self, gpu: SimGPU, name: str, tracer: Optional[Tracer] = None):
        self.gpu = gpu
        self.name = name
        #: Per-stream tracer override; ``None`` falls through to the
        #: device tracer at span-recording time.
        self._tracer = tracer
        done = Event(gpu.env)
        done.succeed()
        self._tail: Event = done

    @property
    def tracer(self) -> Optional[Tracer]:
        return self._tracer if self._tracer is not None else self.gpu.tracer

    # -- generic submission machinery ---------------------------------------
    def _submit(
        self,
        engine: Resource,
        duration: float,
        category: str,
        label: str,
        fn: Optional[Callable[[], Any]] = None,
        after: Optional[list[Event]] = None,
    ) -> Event:
        env = self.gpu.env
        prev = self._tail
        deps = list(after) if after else []

        def op():
            yield prev  # in-order within the stream
            for dep in deps:  # cross-stream dependencies (cudaStreamWaitEvent)
                yield dep
            start_req = env.now
            yield from engine.use(duration)
            if self.tracer is not None:
                # The span covers engine occupancy, not queueing.
                self.tracer.record(engine.name, category, label, env.now - duration, env.now)
                self.tracer.add(f"{category}.time", duration)
                self.tracer.add(f"{category}.count")
                self.tracer.add(f"{category}.wait", env.now - duration - start_req)
            return fn() if fn is not None else None

        proc = env.process(op(), name=f"{self.name}:{label}")
        self._tail = proc
        return proc

    # -- operations -----------------------------------------------------------
    def kernel(
        self,
        m: int,
        n: int,
        k: int,
        label: str = "SrGemm",
        fn: Optional[Callable[[], Any]] = None,
        after: Optional[list[Event]] = None,
        cost_scale: float = 1.0,
    ) -> Event:
        """Enqueue an SrGemm-shaped kernel of physical shape (m, n, k).

        ``after`` adds cross-stream dependencies, the analogue of
        ``cudaStreamWaitEvent``.  ``cost_scale`` multiplies the modeled
        duration; kernel backends advertise it (``modeled_cost_scale``)
        so a hypothetical slower/faster device kernel can be what-if'd
        without recalibrating the cost model.  All shipped backends
        model the paper's fp32 cuASR kernel and keep the neutral 1.0.
        """
        if cost_scale <= 0:
            raise ValueError(f"cost_scale must be positive, got {cost_scale}")
        return self._submit(
            self.gpu.kernel_engine,
            cost_scale * self.gpu.compute_multiplier * self.gpu.cost.srgemm_time(m, n, k),
            "SrGemm",
            label,
            fn,
            after,
        )

    def kernel_time(
        self, duration: float, label: str, fn: Optional[Callable[[], Any]] = None
    ) -> Event:
        """Enqueue a kernel with an explicitly computed duration (used
        for the DiagUpdate squaring chain)."""
        return self._submit(
            self.gpu.kernel_engine, self.gpu.compute_multiplier * duration, "SrGemm", label, fn
        )

    def h2d(
        self, rows: int, cols: int, label: str = "h2dXfer", fn: Optional[Callable[[], Any]] = None
    ) -> Event:
        """Enqueue a host-to-device copy of a physical tile."""
        return self._submit(
            self.gpu.h2d_engine, self.gpu.cost.h2d_time(rows, cols), "h2dXfer", label, fn
        )

    def d2h(
        self, rows: int, cols: int, label: str = "d2hXfer", fn: Optional[Callable[[], Any]] = None
    ) -> Event:
        """Enqueue a device-to-host copy of a physical tile."""
        return self._submit(
            self.gpu.d2h_engine, self.gpu.cost.d2h_time(rows, cols), "d2hXfer", label, fn
        )

    def synchronize(self) -> Event:
        """Event that fires when everything submitted so far completes
        (cudaStreamSynchronize)."""
        return self._tail
