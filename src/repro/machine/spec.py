"""Hardware specifications for the simulated cluster.

All paper results were measured on Summit (ORNL): 4,608 nodes, each
with 2x IBM POWER9 + 6x NVIDIA V100 connected by NVLink-2, 512 GB of
host DRAM, 16 GB HBM2 per GPU, and a Mellanox InfiniBand fat-tree with
~25 GB/s effective per-node injection bandwidth (paper §5.1.1).

The specs below parameterize every cost the simulator charges.  They
are plain frozen dataclasses so tests and benchmarks can derive
what-if machines (e.g. slower NIC, bigger HBM) with
``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "MachineSpec",
    "V100",
    "SUMMIT_NODE",
    "SUMMIT",
    "MI250X_GCD",
    "FRONTIER_NODE",
    "FRONTIER_LIKE",
    "PCIE_GPU",
    "WORKSTATION",
    "MACHINES",
    "scaled_down",
]

GiB = 1024**3
GB = 1e9
TFLOPS = 1e12
US = 1e-6


@dataclass(frozen=True)
class GpuSpec:
    """A GPU accelerator.

    Attributes
    ----------
    name: marketing name.
    hbm_bytes: device memory capacity.
    srgemm_flops: sustained (min,+) SrGemm rate.  The paper's
        CUTLASS-based kernel reaches 6.8 TF/s single precision on V100
        (§4.1); (min,+) cannot use FMA so the relevant peak is 7.8 TF/s.
    peak_flops: the no-FMA single-precision peak used for "percent of
        peak" reporting.
    hbm_bw: device memory bandwidth (bytes/s).
    link_bw: host<->device bandwidth *per direction* (NVLink-2 on
        Summit: 50 GB/s each way per GPU; the paper's Eq. 5 block-size
        estimate of 624 assumes exactly this).
    """

    name: str
    hbm_bytes: int
    srgemm_flops: float
    peak_flops: float
    hbm_bw: float
    link_bw: float


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: CPUs + DRAM + GPUs + NIC."""

    name: str
    gpu: GpuSpec
    gpus_per_node: int
    dram_bytes: int
    #: Aggregate CPU<->DRAM bandwidth; bounds the offload hostUpdate
    #: (paper §4.5: t2 = 3mn * t_m).
    dram_bw: float
    #: Host CPU rate for the (min,+) scalar work done on the host
    #: (element-wise min during hostUpdate is bandwidth-bound, so this
    #: only matters for small fallback kernels).
    cpu_flops: float
    #: NIC injection bandwidth (per node, shared by all ranks on the
    #: node - the crux of §3.4.1's refined model).
    nic_bw: float
    #: Point-to-point message setup latency (the t_l term of Eq. 1).
    nic_latency: float
    #: Bandwidth for rank-to-rank traffic that stays inside the node
    #: (shared memory / NVLink; never crosses the NIC).
    intranode_bw: float
    intranode_latency: float


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: homogeneous nodes plus interconnect topology."""

    name: str
    node: NodeSpec
    max_nodes: int

    @property
    def gpu(self) -> GpuSpec:
        return self.node.gpu

    def node_peak_flops(self) -> float:
        """Theoretical no-FMA peak of one node's GPUs."""
        return self.node.gpus_per_node * self.node.gpu.peak_flops

    def peak_flops(self, nodes: int) -> float:
        """Theoretical no-FMA peak of ``nodes`` nodes."""
        return nodes * self.node_peak_flops()

    def srgemm_flops(self, nodes: int) -> float:
        """Sustained SrGemm kernel rate of ``nodes`` nodes."""
        return nodes * self.node.gpus_per_node * self.node.gpu.srgemm_flops


#: NVIDIA Volta V100 as characterized in the paper (§5.1.1, §4.1).
V100 = GpuSpec(
    name="V100",
    hbm_bytes=16 * GiB,
    srgemm_flops=6.8 * TFLOPS,
    peak_flops=7.85 * TFLOPS,
    hbm_bw=900 * GB,
    link_bw=50 * GB,
)

#: A Summit node (§5.1.1).  DRAM bandwidth: 2 POWER9 sockets at ~170
#: GB/s sustained each.  Intranode rank-to-rank bandwidth is set so a
#: single-node run's effective bandwidth lands above the 25 GB/s NIC
#: line, as in the paper's Figure 3.
SUMMIT_NODE = NodeSpec(
    name="summit-node",
    gpu=V100,
    gpus_per_node=6,
    dram_bytes=512 * GiB,
    dram_bw=340 * GB,
    cpu_flops=1.0 * TFLOPS,
    nic_bw=25 * GB,
    nic_latency=1.5 * US,
    intranode_bw=64 * GB,
    intranode_latency=0.5 * US,
)

#: The Summit supercomputer.
SUMMIT = MachineSpec(name="summit", node=SUMMIT_NODE, max_nodes=4608)

# ---------------------------------------------------------------------------
# Other accelerated architectures.  The paper's §7: "our scaling results
# on Summit should extend to other systems, and the performance models
# we derived can guide their tuning when porting ParallelFw to any
# accelerated architecture."  These presets exercise exactly that: same
# algorithms, different constants, different tuning optima (tests pin
# e.g. that the Eq. 5 offload block-size floor rises on a PCIe box).
# ---------------------------------------------------------------------------

#: One MI250X Graphics Compute Die, Frontier-style: bigger HBM, faster
#: link to the host (Infinity Fabric), higher kernel rate.  The SrGemm
#: rate assumes the same ~87% of the no-FMA peak achieved on V100.
MI250X_GCD = GpuSpec(
    name="MI250X-GCD",
    hbm_bytes=64 * GiB,
    srgemm_flops=20.0 * TFLOPS,
    peak_flops=23.0 * TFLOPS,
    hbm_bw=1600 * GB,
    link_bw=144 * GB,
)

#: A Frontier-like node: 8 GCDs, 512 GB DRAM, Slingshot NIC.
FRONTIER_NODE = NodeSpec(
    name="frontier-node",
    gpu=MI250X_GCD,
    gpus_per_node=8,
    dram_bytes=512 * GiB,
    dram_bw=400 * GB,
    cpu_flops=2.0 * TFLOPS,
    nic_bw=100 * GB,
    nic_latency=1.5 * US,
    intranode_bw=150 * GB,
    intranode_latency=0.5 * US,
)

FRONTIER_LIKE = MachineSpec(name="frontier-like", node=FRONTIER_NODE, max_nodes=9408)

#: A workstation GPU on PCIe 4.0 x16: the host link is the weak point,
#: which pushes the Eq. 5 offload block-size floor up hard.
PCIE_GPU = GpuSpec(
    name="pcie-gpu",
    hbm_bytes=24 * GiB,
    srgemm_flops=12.0 * TFLOPS,
    peak_flops=14.0 * TFLOPS,
    hbm_bw=900 * GB,
    link_bw=25 * GB,
)

#: A single multi-GPU workstation ("cluster" of one node).
WORKSTATION = MachineSpec(
    name="workstation",
    node=NodeSpec(
        name="workstation-node",
        gpu=PCIE_GPU,
        gpus_per_node=4,
        dram_bytes=256 * GiB,
        dram_bw=80 * GB,
        cpu_flops=1.0 * TFLOPS,
        nic_bw=12.5 * GB,
        nic_latency=2.0 * US,
        intranode_bw=40 * GB,
        intranode_latency=0.5 * US,
    ),
    max_nodes=1,
)

#: Registry of the shipped machine presets.
MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (SUMMIT, FRONTIER_LIKE, WORKSTATION)
}


def scaled_down(
    spec: MachineSpec,
    hbm_bytes: Optional[int] = None,
    gpus_per_node: Optional[int] = None,
    name: Optional[str] = None,
) -> MachineSpec:
    """Derive a smaller machine (tiny HBM, fewer GPUs) for tests that
    must hit memory limits without huge matrices."""
    gpu = spec.node.gpu
    if hbm_bytes is not None:
        gpu = replace(gpu, hbm_bytes=hbm_bytes)
    node = replace(
        spec.node,
        gpu=gpu,
        gpus_per_node=gpus_per_node if gpus_per_node is not None else spec.node.gpus_per_node,
    )
    return replace(spec, node=node, name=name or f"{spec.name}-scaled")
