"""Simulated-time cost functions and virtual problem scaling.

Every simulated operation charges time computed here, so the whole
timing behaviour of the reproduction is concentrated in this module and
driven by :class:`~repro.machine.spec.MachineSpec`.

Virtual scaling
---------------
The paper runs up to n = 1,664,511 vertices; the reproduction keeps the
*dataflow* at laptop scale but evaluates all costs at paper scale.  A
:class:`CostModel` carries ``dim_scale`` = (virtual linear size) /
(physical linear size).  Algorithms pass *physical* element dimensions
to the helpers here, which scale linear dimensions by ``dim_scale``
before converting to flops (cubic), bytes (quadratic) and time.  With
``dim_scale == 1`` the simulation is literal.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import MachineSpec

__all__ = ["CostModel", "DEFAULT_ITEMSIZE"]

#: The paper's kernels are single precision.
DEFAULT_ITEMSIZE = 4


@dataclass(frozen=True)
class CostModel:
    """Charges simulated time for compute, transfers and messages.

    Parameters
    ----------
    machine:
        Hardware constants.
    dim_scale:
        Virtual / physical linear-dimension ratio (see module docs).
    itemsize:
        Bytes per matrix element at paper scale (4 = float32).
    host_fw_flop_rate:
        Rate used for a *host-side* scalar Floyd-Warshall diagonal
        update (when ``diag_on_gpu`` is off); deliberately far below
        GPU rates, as in the paper's §4.2 argument.
    """

    machine: MachineSpec
    dim_scale: float = 1.0
    itemsize: int = DEFAULT_ITEMSIZE
    host_fw_flop_rate: float = 25e9
    #: SrGemm efficiency saturates with the inner (block) dimension:
    #: eff(k) = k² / (k² + kernel_halfrate_dim²).  Calibrated so the
    #: paper's Figure 5 shape holds: ~22% of the sustained rate at
    #: b=128, ~50% at 256, ~87% at 512, ~94% at 768 ("block ≥ 768 is
    #: very close to peak", §5.3.1).
    kernel_halfrate_dim: float = 200.0
    #: Fixed per-kernel-launch overhead (seconds); penalizes very
    #: small tiles / many launches (visible in Figure 6's small-buffer
    #: column).
    kernel_launch_overhead: float = 8e-6

    # -- unit conversions ---------------------------------------------------
    def v(self, dim_phys: float) -> float:
        """Physical linear dimension -> virtual linear dimension."""
        return dim_phys * self.dim_scale

    def bytes_of(self, rows_phys: float, cols_phys: float) -> float:
        """Virtual byte size of a physical ``rows x cols`` tile."""
        return self.v(rows_phys) * self.v(cols_phys) * self.itemsize

    # -- GPU compute --------------------------------------------------------
    def kernel_efficiency(self, k_virtual: float) -> float:
        """Fraction of the sustained SrGemm rate achieved at inner
        dimension ``k`` (GPU GEMMs starve below ~2 tiles of K)."""
        c = self.kernel_halfrate_dim
        return k_virtual * k_virtual / (k_virtual * k_virtual + c * c)

    def srgemm_rate(self, k_virtual: float) -> float:
        """Effective SrGemm flop rate at inner dimension ``k``."""
        return self.machine.gpu.srgemm_flops * self.kernel_efficiency(k_virtual)

    def srgemm_time(self, m: int, n: int, k: int) -> float:
        """One fused ``C ← C ⊕ A ⊗ B`` on the GPU: 2mnk flops at the
        size-dependent SrGemm rate (paper §2.7.1 / §4.5 t0), plus the
        kernel launch overhead."""
        kv = self.v(k)
        flops = 2.0 * self.v(m) * self.v(n) * kv
        return self.kernel_launch_overhead + flops / self.srgemm_rate(kv)

    def diag_update_gpu_time(self, b: int, squaring_steps: int) -> float:
        """DiagUpdate via repeated squaring on the GPU (paper §4.2):
        ``squaring_steps`` back-to-back b^3 SrGemms."""
        return squaring_steps * self.srgemm_time(b, b, b)

    def diag_update_host_time(self, b: int) -> float:
        """Classic FW on the host CPU: 2 b^3 flops at a scalar rate."""
        bv = self.v(b)
        return 2.0 * bv**3 / self.host_fw_flop_rate

    # -- host <-> device ----------------------------------------------------
    def h2d_time(self, rows: int, cols: int) -> float:
        """Host-to-device tile transfer over NVLink (per direction)."""
        return self.bytes_of(rows, cols) / self.machine.gpu.link_bw

    def d2h_time(self, rows: int, cols: int) -> float:
        """Device-to-host tile transfer (paper §4.5 t1 component)."""
        return self.bytes_of(rows, cols) / self.machine.gpu.link_bw

    def host_update_time(self, rows: int, cols: int) -> float:
        """hostUpdate ``C ← C ⊕ X``: 2 reads + 1 write of an m x n tile
        against DRAM bandwidth (paper §4.5: t2 = 3 m n t_m)."""
        return 3.0 * self.bytes_of(rows, cols) / self.machine.node.dram_bw

    def checkpoint_time(self, rows: int, cols: int) -> float:
        """Snapshot (or restore) a rank's ``rows x cols`` working set
        to/from the host-side checkpoint store: one read of the source
        plus one write of the copy, both against DRAM bandwidth."""
        return 2.0 * self.bytes_of(rows, cols) / self.machine.node.dram_bw

    # -- network -------------------------------------------------------------
    def internode_transfer_time(self, nbytes_virtual: float) -> float:
        """NIC occupancy for a message of that many (virtual) bytes."""
        return nbytes_virtual / self.machine.node.nic_bw

    def intranode_transfer_time(self, nbytes_virtual: float) -> float:
        return nbytes_virtual / self.machine.node.intranode_bw

    @property
    def internode_latency(self) -> float:
        return self.machine.node.nic_latency

    @property
    def intranode_latency(self) -> float:
        return self.machine.node.intranode_latency

    # -- derived scalar rates (for the analytic models) ----------------------
    @property
    def t_f(self) -> float:
        """Seconds per flop on one GPU's SrGemm path."""
        return 1.0 / self.machine.gpu.srgemm_flops

    @property
    def t_w_internode(self) -> float:
        """Seconds per byte out of a node's NIC."""
        return 1.0 / self.machine.node.nic_bw

    @property
    def t_hd(self) -> float:
        """Seconds per byte across the host-device link."""
        return 1.0 / self.machine.gpu.link_bw

    @property
    def t_m(self) -> float:
        """Seconds per byte of CPU<->DRAM traffic."""
        return 1.0 / self.machine.node.dram_bw

    # -- memory accounting ----------------------------------------------------
    def gpu_bytes(self, rows: int, cols: int) -> int:
        """Virtual HBM footprint of a physical tile (what the GPU
        memory accounting charges)."""
        return int(self.bytes_of(rows, cols))
