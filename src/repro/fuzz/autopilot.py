"""The chaos autopilot: budget-driven fuzzing sessions.

:class:`FuzzSession` wires the whole tentpole together: a seeded
:class:`~repro.fuzz.generator.ScenarioGenerator` draws scenarios, a
:class:`~repro.fuzz.executor.ScenarioExecutor` runs each one (optionally
sandboxed with a wall-clock timeout), an
:class:`~repro.fuzz.oracles.OracleSuite` judges the outcome, findings
are delta-debugged down to minimal repros
(:func:`~repro.fuzz.shrink.shrink`), and every scenario is appended to
the replayable JSONL corpus with its outcome digest.

Coverage accounting lives in :class:`CoverageMap`, backed by the same
:class:`~repro.obs.MetricsRegistry` the solver's observability layer
uses - `fuzz.coverage.<variant>.<fault-class>.<verify>` counters plus
session counters (`fuzz.scenarios`, `fuzz.findings`, ...), all
exportable through the registry's standard JSON snapshot.  In
``autopilot`` mode the generator draws against this map, biasing toward
under-covered cells at 1/(1+hits) weight.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import MetricsRegistry
from .corpus import Corpus, CorpusRecord
from .executor import Outcome, ScenarioExecutor, run_scenario
from .generator import GeneratorConfig, ScenarioGenerator
from .oracles import OracleSuite, OracleViolation
from .scenario import Scenario
from .shrink import ShrinkResult, shrink

__all__ = ["CoverageMap", "Finding", "FuzzReport", "FuzzSession"]

#: Families the shrinker can meaningfully reproduce in isolation; a
#: perf-model violation depends on the session's calibration pool, so
#: its repro is the corpus record itself.
SHRINKABLE_FAMILIES = ("crash", "equivalence", "resilience", "determinism", "certificate")


class CoverageMap:
    """(variant x fault-class x verify-mode) hit counters, plus
    class-*pair* cells for multi-fault scenarios.

    Backed by a :class:`~repro.obs.MetricsRegistry` so the coverage
    snapshot rides the existing metrics export format (and tests can
    assert on it like any other instrumented counter).  A scenario that
    stacks several fault classes (see
    :class:`~repro.fuzz.generator.GeneratorConfig.p_multi_fault`)
    credits every per-class cell *and* every unordered class pair under
    ``fuzz.pairs.<variant>.<a>+<b>.<verify>`` - the map of which
    recovery-path *combinations* have actually been exercised.
    """

    PREFIX = "fuzz.coverage"
    PAIR_PREFIX = "fuzz.pairs"

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()

    @classmethod
    def _cell(cls, variant: str, fault_class: str, verify: str) -> str:
        return f"{cls.PREFIX}.{variant}.{fault_class}.{verify}"

    @classmethod
    def _pair_cell(cls, variant: str, class_a: str, class_b: str, verify: str) -> str:
        a, b = sorted((class_a, class_b))
        return f"{cls.PAIR_PREFIX}.{variant}.{a}+{b}.{verify}"

    def record(self, scenario: Scenario) -> None:
        classes = scenario.fault_classes()
        for fault_class in classes:
            self.registry.counter(
                self._cell(scenario.variant, fault_class, scenario.verify)
            ).inc()
        for i, class_a in enumerate(classes):
            for class_b in classes[i + 1 :]:
                self.registry.counter(
                    self._pair_cell(scenario.variant, class_a, class_b, scenario.verify)
                ).inc()

    def hits(self, variant: str, fault_class: str, verify: str) -> float:
        return self.registry.value(self._cell(variant, fault_class, verify))

    def pair_hits(self, variant: str, class_a: str, class_b: str, verify: str) -> float:
        return self.registry.value(self._pair_cell(variant, class_a, class_b, verify))

    def cells(self) -> dict[tuple[str, str, str], float]:
        return self._cells_under(self.PREFIX)

    def pair_cells(self) -> dict[tuple[str, str, str], float]:
        """(variant, "a+b", verify) -> hits for multi-class scenarios."""
        return self._cells_under(self.PAIR_PREFIX)

    def _cells_under(self, prefix: str) -> dict[tuple[str, str, str], float]:
        out: dict[tuple[str, str, str], float] = {}
        for name in self.registry.names():
            if not name.startswith(prefix + "."):
                continue
            parts = name[len(prefix) + 1 :].rsplit(".", 2)
            if len(parts) == 3:
                out[tuple(parts)] = self.registry.value(name)
        return out

    def summary(self) -> dict:
        cells = self.cells()
        pairs = self.pair_cells()
        return {
            "cells_hit": len(cells),
            "hits": sum(cells.values()),
            "max_hits": max(cells.values(), default=0),
            "pair_cells_hit": len(pairs),
            "pair_hits": sum(pairs.values()),
        }


@dataclass
class Finding:
    """One oracle violation, with its minimized repro when available."""

    scenario: Scenario
    outcome: Outcome
    violations: list  # list[OracleViolation]
    shrunk: Optional[ShrinkResult] = None

    @property
    def families(self) -> tuple[str, ...]:
        return tuple(sorted({v.family for v in self.violations}))

    def to_dict(self) -> dict:
        return {
            "scenario_id": self.scenario.scenario_id,
            "families": list(self.families),
            "violations": [v.to_dict() for v in self.violations],
            "minimal_scenario_id": self.shrunk.scenario.scenario_id
            if self.shrunk
            else None,
            "shrink_evals": self.shrunk.evals if self.shrunk else 0,
        }


@dataclass
class FuzzReport:
    """What a fuzzing session did, machine- and human-readable."""

    seed: int
    budget: int
    executed: int = 0
    findings: list = field(default_factory=list)  # list[Finding]
    wall_seconds: float = 0.0
    kills: int = 0
    coverage: dict = field(default_factory=dict)
    oracle_seconds: dict = field(default_factory=dict)
    corpus_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def scenarios_per_minute(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return 60.0 * self.executed / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "executed": self.executed,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "wall_seconds": self.wall_seconds,
            "scenarios_per_minute": self.scenarios_per_minute,
            "kills": self.kills,
            "coverage": self.coverage,
            "oracle_seconds": self.oracle_seconds,
            "corpus_path": self.corpus_path,
        }

    def summary(self) -> str:
        verdict = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines = [
            f"fuzz: {self.executed}/{self.budget} scenarios (seed {self.seed}) "
            f"in {self.wall_seconds:.1f}s "
            f"({self.scenarios_per_minute:.0f}/min) - {verdict}",
            f"coverage: {self.coverage.get('cells_hit', 0)} cells hit, "
            f"{self.kills} timeout kill(s)",
        ]
        for f in self.findings:
            lines.append(
                f"  FINDING {f.scenario.scenario_id} [{','.join(f.families)}]: "
                + (f.violations[0].detail if f.violations else "")
            )
            if f.shrunk is not None:
                lines.append(
                    f"    minimal repro {f.shrunk.scenario.scenario_id} "
                    f"({f.shrunk.scenario.describe().partition(': ')[2]}) "
                    f"after {f.shrunk.evals} shrink eval(s)"
                )
        return "\n".join(lines)


@dataclass
class FuzzSession:
    """One budgeted fuzzing run; ``run()`` returns a :class:`FuzzReport`."""

    budget: int = 50
    seed: int = 0
    corpus_path: Optional[str] = None
    #: Bias generation toward under-covered coverage cells.
    autopilot: bool = True
    #: Fork a sandbox child per scenario with this wall-clock timeout;
    #: None runs in-process (faster; CI smoke uses a small timeout).
    timeout: Optional[float] = None
    isolate: bool = False
    #: Concurrent sandboxed scenarios (only >1 when isolating).
    jobs: int = 1
    generator_config: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: Shrink findings to minimal repros (delta debugging).
    shrink_findings: bool = True
    shrink_max_evals: int = 120
    #: Stop after this many findings (0 = exhaust the budget).
    max_findings: int = 0
    log: Optional[Callable[[str], None]] = None
    registry: Optional[MetricsRegistry] = None

    def __post_init__(self):
        self.registry = self.registry or MetricsRegistry()
        self.coverage = CoverageMap(self.registry)
        self.generator = ScenarioGenerator(
            seed=self.seed,
            config=self.generator_config,
            coverage=self.coverage if self.autopilot else None,
        )
        self.executor = ScenarioExecutor(timeout=self.timeout, isolate=self.isolate)
        self.oracles = OracleSuite()
        self.corpus = Corpus(self.corpus_path) if self.corpus_path else None

    def _say(self, msg: str) -> None:
        if self.log is not None:
            self.log(msg)

    # -- the loop ----------------------------------------------------------
    def run(self) -> FuzzReport:
        report = FuzzReport(seed=self.seed, budget=self.budget)
        report.corpus_path = self.corpus_path
        t0 = time.perf_counter()
        pending: list[tuple[int, Scenario]] = []
        index = 0
        while index < self.budget or pending:
            # Draw a batch (jobs-wide when sandboxing in parallel).
            width = max(1, self.jobs) if self.isolate else 1
            while index < self.budget and len(pending) < width:
                pending.append((index, self.generator.draw()))
                index += 1
            batch, pending = pending, []
            outcomes = self._run_batch([s for _, s in batch])
            for (draw_index, scenario), outcome in zip(batch, outcomes):
                report.executed += 1
                self.coverage.record(scenario)
                self.registry.counter("fuzz.scenarios").inc()
                violations = self.oracles.check(scenario, outcome)
                self._record(scenario, outcome, violations, draw_index)
                if violations:
                    finding = self._handle_finding(scenario, outcome, violations)
                    report.findings.append(finding)
                    self.registry.counter("fuzz.findings").inc()
                    if self.max_findings and len(report.findings) >= self.max_findings:
                        pending = []
                        index = self.budget
                        break
        report.wall_seconds = time.perf_counter() - t0
        report.kills = self.executor.kills
        report.coverage = self.coverage.summary()
        report.oracle_seconds = dict(self.oracles.timings)
        self.registry.gauge("fuzz.wall_seconds").set(report.wall_seconds)
        return report

    def _run_batch(self, scenarios: list[Scenario]) -> list[Outcome]:
        if len(scenarios) <= 1 or not self.isolate:
            return [self.executor.run(s) for s in scenarios]
        from concurrent.futures import ThreadPoolExecutor

        # Each isolated run blocks a thread on its sandbox child's pipe,
        # so plain threads give process-level parallelism here.
        with ThreadPoolExecutor(max_workers=len(scenarios)) as pool:
            return list(pool.map(self.executor.run, scenarios))

    def _record(
        self,
        scenario: Scenario,
        outcome: Outcome,
        violations: list,
        draw_index: int,
        **extra,
    ) -> None:
        if self.corpus is None:
            return
        self.corpus.append(
            CorpusRecord(
                scenario=scenario,
                outcome=outcome,
                violations=list(violations),
                gen_seed=self.seed,
                gen_index=draw_index,
                **extra,
            )
        )

    # -- findings ----------------------------------------------------------
    def _handle_finding(
        self, scenario: Scenario, outcome: Outcome, violations: list
    ) -> Finding:
        families = {v.family for v in violations}
        self._say(
            f"finding {scenario.scenario_id} [{','.join(sorted(families))}]: "
            + violations[0].detail
        )
        finding = Finding(scenario=scenario, outcome=outcome, violations=violations)
        shrinkable = families & set(SHRINKABLE_FAMILIES)
        if self.shrink_findings and shrinkable:
            finding.shrunk = self.shrink_finding(scenario, shrinkable)
            minimal = finding.shrunk.scenario
            if self.corpus is not None and minimal != scenario:
                min_outcome = run_scenario(minimal)
                min_violations = self._isolated_check(minimal, min_outcome)
                self.corpus.append(
                    CorpusRecord(
                        scenario=minimal,
                        outcome=min_outcome,
                        violations=min_violations,
                        shrunk_from=scenario.scenario_id,
                        note="minimized repro",
                    )
                )
        return finding

    def _isolated_check(
        self, scenario: Scenario, outcome: Outcome
    ) -> list[OracleViolation]:
        """Judge one scenario with a fresh suite sharing the session's
        reference-digest cache (the session pools/timings stay clean)."""
        suite = OracleSuite()
        suite._ref_cache = self.oracles._ref_cache
        return suite.check(scenario, outcome)

    def shrink_finding(self, scenario: Scenario, families: set) -> ShrinkResult:
        """Delta-debug a failing scenario; the predicate demands the
        candidate still violate at least one of the same families."""
        target = families & set(SHRINKABLE_FAMILIES)

        def still_fails(candidate: Scenario) -> bool:
            outcome = run_scenario(candidate)
            got = {v.family for v in self._isolated_check(candidate, outcome)}
            return bool(got & target)

        self._say(f"shrinking {scenario.scenario_id} ...")
        result = shrink(
            scenario,
            still_fails,
            max_evals=self.shrink_max_evals,
            log=self.log,
        )
        self.registry.counter("fuzz.shrink_evals").inc(result.evals)
        return result
