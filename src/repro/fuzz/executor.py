"""Sandboxed scenario execution.

One scenario in, one :class:`Outcome` out - *never* an exception.  The
executor classifies whatever happens into the stable exit-code
vocabulary of :mod:`repro.errors` (handled :class:`ReproError`
subclasses keep their table codes; anything else is an
:class:`~repro.errors.InternalError`, code 14; a wall-clock timeout is
code 124, the shell convention), and captures the traceback so a corpus
entry is triageable without re-running it.

Two execution modes:

* **in-process** (default) - fastest, used by the oracles, the
  shrinker, and replay; determinism of the simulation makes this safe.
* **isolated** (``isolate=True``) - fork a child per scenario with a
  hard wall-clock timeout; a hang or hard crash (segfault, OOM-kill)
  is reported as an outcome instead of taking the session down.  This
  is the chaos-autopilot mode.
"""

from __future__ import annotations

import dataclasses
import hashlib
import traceback as _tb
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ReproError, exit_code_for
from .scenario import Scenario

__all__ = ["Outcome", "ScenarioExecutor", "run_scenario", "TIMEOUT_EXIT_CODE"]

#: Exit code reported for scenarios killed by the wall-clock timeout
#: (the shell's `timeout(1)` convention).
TIMEOUT_EXIT_CODE = 124

#: Exit code reported when an isolated child dies without delivering an
#: outcome (segfault, OOM-kill, interpreter abort).
HARD_CRASH_EXIT_CODE = 125


@dataclass
class Outcome:
    """What one scenario execution produced (JSON-able, corpus-ready)."""

    status: str  # "ok" | "error" | "timeout" | "crash"
    exit_code: int
    error_type: Optional[str] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: SHA-256 prefix of the distance matrix bytes (+ shape/dtype).
    #: Fleet scenarios store a combined digest over ``job_digests``.
    dist_digest: Optional[str] = None
    makespan: Optional[float] = None
    certificate: Optional[dict] = None
    fault_counters: Optional[dict] = None
    #: Fleet scenarios only: per-job distance digests aligned with job
    #: index (None for a job that did not finish DONE).
    job_digests: Optional[list] = None
    #: :class:`~repro.obs.validation.VariantMeasurement` fields of the
    #: instrumented run (perf-oracle input); None when uninstrumented.
    measurement: Optional[dict] = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "Outcome":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in raw.items() if k in known})

    def digest_key(self) -> tuple:
        """What the determinism and replay oracles byte-compare."""
        cert = None
        if self.certificate is not None:
            import json

            cert = json.dumps(self.certificate, sort_keys=True)
        return (self.status, self.exit_code, self.dist_digest, repr(self.makespan), cert)


def dist_digest(dist) -> str:
    h = hashlib.sha256()
    h.update(str(dist.shape).encode())
    h.update(str(dist.dtype).encode())
    h.update(dist.tobytes())
    return h.hexdigest()[:24]


def _measurement_dict(result, machine: str) -> Optional[dict]:
    from ..api import resolve_machine
    from ..machine import CostModel
    from ..obs.validation import measure

    if result.tracer is None or result.metrics is None:
        return None
    cost = CostModel(resolve_machine(machine))
    m = measure(result, cost)
    return dataclasses.asdict(m)


def run_scenario(scenario: Scenario) -> Outcome:
    """Execute one scenario in-process and classify the outcome."""
    import time

    t0 = time.perf_counter()
    try:
        if scenario.is_fleet:
            outcome = _run_fleet(scenario)
        else:
            from ..api import solve

            graph = scenario.build_graph()
            result = solve(graph, scenario.to_solve_config())
            outcome = Outcome(
                status="ok",
                exit_code=0,
                dist_digest=dist_digest(result.dist) if result.dist is not None else None,
                makespan=result.makespan,
                certificate=result.certificate,
                fault_counters=dict(result.fault_counters) if result.fault_counters else None,
                measurement=_measurement_dict(result, scenario.machine)
                if scenario.instrument
                else None,
            )
    except Exception as exc:  # classified, never propagated
        handled = isinstance(exc, ReproError)
        outcome = Outcome(
            status="error",
            exit_code=exit_code_for(exc) if handled else 14,
            error_type=type(exc).__name__,
            error=str(exc),
            traceback=_tb.format_exc(),
        )
    outcome.wall_seconds = time.perf_counter() - t0
    return outcome


#: Fleet metric names copied into ``Outcome.fault_counters`` so corpus
#: records pin the self-healing activity, not just the final digests.
FLEET_COUNTER_KEYS = (
    "fleet.resilience.retries",
    "fleet.resilience.quarantines",
    "fleet.resilience.reinstated",
    "fleet.resilience.replans",
    "fleet.resilience.poisoned",
    "fleet.resilience.deadline_kills",
    "fleet.jobs.completed",
    "fleet.jobs.failed",
)


def _run_fleet(scenario: Scenario) -> Outcome:
    """Run a fleet scenario: ``scenario.jobs`` tenants on one
    ClusterScheduler, self-healing armed when the scenario carries a
    resilience policy.

    Even-indexed jobs are the chaos tenants (they get the scenario's
    fault plan); odd-indexed ones run clean - the acceptance-test shape
    where bystanders must stay exact while neighbours retry.  The
    outcome is ok iff every job ends DONE; otherwise it keeps the CLI
    convention of the worst per-job exit code.
    """
    from ..sched import ClusterScheduler

    sched = ClusterScheduler(
        machine=scenario.machine,
        n_nodes=scenario.n_nodes,
        resilience=scenario.resilience,
    )
    base = scenario.to_solve_config()
    clean = base.replace(fault_plan=(), trace=False)
    chaos = base.replace(trace=False)
    handles = []
    for j in range(scenario.jobs):
        graph = scenario.job_graph(j).build()
        config = chaos if (j % 2 == 0 and scenario.fault_specs) else clean
        handles.append(
            sched.submit(
                graph,
                config,
                name=f"job{j}",
                priority=j % 3,
                deadline=scenario.deadline,
            )
        )
    reports = sched.run()
    flat = sched.fleet_metrics().flat()
    job_digests: list = []
    errors = []
    for handle, report in zip(handles, reports):
        if report.status == "done":
            job_digests.append(dist_digest(handle.result().dist))
        else:
            job_digests.append(None)
            errors.append((report.exit_code, report.error or report.status))
    counters: dict = {}
    for handle in handles:
        job = handle._job
        if job.result is not None and job.result.fault_counters:
            for key, value in job.result.fault_counters.items():
                counters[key] = counters.get(key, 0) + value
    for key in FLEET_COUNTER_KEYS:
        if flat.get(key):
            counters[key] = flat[key]
    if scenario.jobs == 1:
        combined = job_digests[0]
    else:
        h = hashlib.sha256()
        for j, digest in enumerate(job_digests):
            h.update(f"{j}:{digest}\n".encode())
        combined = h.hexdigest()[:24]
    cert = None
    if reports[0].status == "done":
        cert = handles[0].result().certificate
    if errors:
        return Outcome(
            status="error",
            exit_code=max(code for code, _ in errors),
            error_type="FleetJobsFailed",
            error="; ".join(f"exit {code}: {msg}" for code, msg in errors),
            dist_digest=combined,
            makespan=flat.get("fleet.makespan"),
            certificate=cert,
            fault_counters=counters or None,
            job_digests=job_digests,
        )
    return Outcome(
        status="ok",
        exit_code=0,
        dist_digest=combined,
        makespan=flat.get("fleet.makespan"),
        certificate=cert,
        fault_counters=counters or None,
        job_digests=job_digests,
    )


def _child_main(conn, scenario_dict: dict) -> None:  # pragma: no cover - child process
    try:
        outcome = run_scenario(Scenario.from_dict(scenario_dict))
        conn.send(outcome.to_dict())
    except BaseException as exc:  # even SystemExit must report back
        conn.send(
            Outcome(
                status="crash",
                exit_code=HARD_CRASH_EXIT_CODE,
                error_type=type(exc).__name__,
                error=str(exc),
                traceback=_tb.format_exc(),
            ).to_dict()
        )
    finally:
        conn.close()


@dataclass
class ScenarioExecutor:
    """Runs scenarios and guarantees an :class:`Outcome` per run.

    ``timeout`` (wall-clock seconds per scenario) only binds in
    isolated mode - the in-process path records elapsed time but
    cannot interrupt a hung solve.
    """

    timeout: Optional[float] = None
    isolate: bool = False
    #: Filled by isolated runs that had to terminate children.
    kills: int = field(default=0, init=False)

    def run(self, scenario: Scenario) -> Outcome:
        if not self.isolate:
            return run_scenario(scenario)
        return self._run_isolated(scenario)

    def _run_isolated(self, scenario: Scenario) -> Outcome:
        import multiprocessing as mp

        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_main, args=(child, scenario.to_dict()))
        proc.start()
        child.close()
        try:
            if parent.poll(self.timeout):
                outcome = Outcome.from_dict(parent.recv())
                proc.join(5.0)
                if proc.is_alive():  # finished sending but wedged on exit
                    proc.terminate()
                    proc.join()
                return outcome
            # Timeout: the child is hung - kill it and classify.
            self.kills += 1
            proc.terminate()
            proc.join()
            return Outcome(
                status="timeout",
                exit_code=TIMEOUT_EXIT_CODE,
                error="scenario exceeded wall-clock timeout "
                f"of {self.timeout:g}s",
                wall_seconds=float(self.timeout or 0.0),
            )
        except EOFError:
            # Child died before sending anything: segfault/OOM-kill.
            proc.join()
            return Outcome(
                status="crash",
                exit_code=HARD_CRASH_EXIT_CODE,
                error=f"sandboxed child died with exitcode {proc.exitcode} "
                "before reporting an outcome",
            )
        finally:
            parent.close()
