"""Replayable scenario database (JSONL, one record per line).

Every fuzzed scenario can be appended here with its outcome and any
oracle violations; findings additionally carry their shrunk minimal
repro.  Records embed the *entire* scenario (graph seed, fault specs,
fault seed, backend, ...) so replay needs nothing but the record:

    repro-apsp fuzz replay <scenario-id>

re-runs the stored tuple and byte-compares the outcome digest against
the recorded one.  The checked-in regression corpus
(``tests/data/fuzz_regressions.jsonl``) is replayed the same way by a
tier-1 test, which is how past findings stay fixed.

The file format is append-only JSONL - merge-friendly, greppable, and
streamable.  Record identity is the scenario's content-addressed id, so
re-appending the same scenario is a no-op under :meth:`Corpus.add`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import ConfigurationError
from .executor import Outcome, run_scenario
from .oracles import OracleViolation
from .scenario import Scenario

__all__ = ["CorpusRecord", "Corpus", "ReplayReport"]


@dataclass
class CorpusRecord:
    """One corpus line: scenario + what happened + why it was kept."""

    scenario: Scenario
    outcome: Optional[Outcome] = None
    violations: list = field(default_factory=list)  # list[OracleViolation]
    #: scenario_id of the original (pre-shrink) finding, when this
    #: record is a minimized repro.
    shrunk_from: Optional[str] = None
    #: (generator seed, draw index) provenance, when generated.
    gen_seed: Optional[int] = None
    gen_index: Optional[int] = None
    note: str = ""

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id

    @property
    def is_finding(self) -> bool:
        return bool(self.violations)

    def to_dict(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "scenario": self.scenario.to_dict(),
            "outcome": self.outcome.to_dict() if self.outcome else None,
            "violations": [v.to_dict() for v in self.violations],
            "shrunk_from": self.shrunk_from,
            "gen_seed": self.gen_seed,
            "gen_index": self.gen_index,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CorpusRecord":
        if not isinstance(raw, dict) or "scenario" not in raw:
            raise ConfigurationError(f"corpus record must carry a 'scenario': {raw!r}")
        outcome = raw.get("outcome")
        return cls(
            scenario=Scenario.from_dict(raw["scenario"]),
            outcome=Outcome.from_dict(outcome) if outcome else None,
            violations=[OracleViolation.from_dict(v) for v in raw.get("violations", [])],
            shrunk_from=raw.get("shrunk_from"),
            gen_seed=raw.get("gen_seed"),
            gen_index=raw.get("gen_index"),
            note=raw.get("note", ""),
        )


@dataclass
class ReplayReport:
    """Result of re-running a corpus record against its stored digest."""

    record: CorpusRecord
    outcome: Outcome
    bit_exact: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "scenario_id": self.record.scenario_id,
            "bit_exact": self.bit_exact,
            "detail": self.detail,
            "outcome": self.outcome.to_dict(),
        }


class Corpus:
    """Append-only JSONL scenario database."""

    def __init__(self, path: str):
        self.path = path

    # -- reads -------------------------------------------------------------
    def __iter__(self) -> Iterator[CorpusRecord]:
        if not os.path.exists(self.path):
            return
        with open(self.path) as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    yield CorpusRecord.from_dict(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{self.path}:{lineno}: corrupt corpus line: {exc}"
                    ) from exc

    def records(self) -> list[CorpusRecord]:
        return list(self)

    def ids(self) -> set[str]:
        return {r.scenario_id for r in self}

    def get(self, scenario_id: str) -> CorpusRecord:
        """Look up by full or unambiguous-prefix scenario id."""
        matches = [
            r for r in self
            if r.scenario_id == scenario_id or r.scenario_id.startswith(scenario_id)
        ]
        if not matches:
            raise ConfigurationError(
                f"no scenario {scenario_id!r} in corpus {self.path!r}"
            )
        distinct = {r.scenario_id for r in matches}
        if len(distinct) > 1:
            raise ConfigurationError(
                f"scenario id {scenario_id!r} is ambiguous in {self.path!r}: "
                f"{sorted(distinct)}"
            )
        return matches[-1]  # newest record wins for a re-appended id

    # -- writes ------------------------------------------------------------
    def append(self, record: CorpusRecord) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def add(self, record: CorpusRecord) -> bool:
        """Append unless the exact scenario id is already present."""
        if record.scenario_id in self.ids():
            return False
        self.append(record)
        return True

    # -- replay ------------------------------------------------------------
    def replay(self, scenario_id: str, *, runner=run_scenario) -> ReplayReport:
        """Re-run a stored scenario and byte-compare outcome digests."""
        record = self.get(scenario_id)
        outcome = runner(record.scenario)
        if record.outcome is None:
            return ReplayReport(
                record, outcome, bit_exact=False,
                detail="record carries no stored outcome to compare against",
            )
        stored, fresh = record.outcome.digest_key(), outcome.digest_key()
        if stored == fresh:
            return ReplayReport(record, outcome, bit_exact=True, detail="digests match")
        return ReplayReport(
            record, outcome, bit_exact=False,
            detail=f"digest drift: stored {stored} != replayed {fresh}",
        )

    def replay_all(self, *, runner=run_scenario) -> list[ReplayReport]:
        return [self.replay(r.scenario_id, runner=runner) for r in self.records()]

    # -- maintenance -------------------------------------------------------
    def minimize(self, out_path: Optional[str] = None) -> int:
        """Rewrite keeping only findings and minimized repros, newest
        record per scenario id.  Returns the number of records kept."""
        latest: dict[str, CorpusRecord] = {}
        order: list[str] = []
        for r in self:
            if r.scenario_id not in latest:
                order.append(r.scenario_id)
            latest[r.scenario_id] = r
        kept = [
            latest[sid] for sid in order
            if latest[sid].is_finding or latest[sid].shrunk_from
        ]
        dest = out_path or self.path
        parent = os.path.dirname(os.path.abspath(dest))
        os.makedirs(parent, exist_ok=True)
        tmp = dest + ".tmp"
        with open(tmp, "w") as fh:
            for r in kept:
                fh.write(json.dumps(r.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, dest)
        return len(kept)
