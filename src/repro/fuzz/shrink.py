"""Delta-debugging shrinker: reduce a failing scenario to a minimal repro.

Given a scenario and a predicate ("does this scenario still trip the
same oracle family?"), :func:`shrink` greedily applies reduction passes
until a fixpoint:

1. drop fault specs one at a time (keeping any ``policy:`` spec until
   every message/crash fault that needs it is gone);
2. shrink the graph (halve ``n`` toward a floor, re-deriving the
   structured generators' shape parameters);
3. shrink the block size toward the small end;
4. simplify the execution: fleet reductions first (one job, no
   deadline, no resilience policy), then fewer ranks, simpler variant
   (toward ``baseline``), reference backend, verify off, determinism
   check off.

Each candidate is re-run through the *same* oracle predicate, so the
minimized scenario provably still fails for the same reason - that is
the invariant the shrinker unit test pins down.  Passes are ordered
most-valuable-first (smaller fault plans and graphs dominate triage
cost), and the whole search is bounded by ``max_evals`` so a pathological
predicate cannot spin forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .scenario import GraphSpec, Scenario

__all__ = ["ShrinkResult", "shrink"]

#: Variant simplification ladder - each maps to a strictly "simpler"
#: schedule; baseline is the fixpoint.
_SIMPLER_VARIANT = {
    "offload-pipelined": "pipelined",
    "offload": "baseline",
    "async": "pipelined",
    "reordering": "baseline",
    "pipelined": "baseline",
}

#: Fault kinds whose liveness depends on an armed retransmit policy -
#: dropping the policy spec before these is a designed deadlock, not a
#: smaller repro.
_POLICY_DEPENDENT = ("drop", "corrupt", "crash", "oom")


@dataclass
class ShrinkResult:
    """The minimized scenario plus the search's audit trail."""

    scenario: Scenario
    evals: int = 0
    steps: list = field(default_factory=list)  # (pass-name, scenario_id) per accepted step

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "evals": self.evals,
            "steps": [list(s) for s in self.steps],
        }


def _graph_candidates(g: GraphSpec) -> list[GraphSpec]:
    """Strictly-smaller graph specs, preferring aggressive halving."""
    out: list[GraphSpec] = []
    for target in (g.n // 2, g.n - g.n // 4, g.n - 1):
        n = max(4, target)
        if n >= g.n:
            continue
        if g.kind == "grid-road":
            rows = max(2, min(g.rows or 2, n // 2))
            cols = max(2, n // rows)
            if rows * cols < g.n:
                out.append(
                    GraphSpec(kind=g.kind, n=rows * cols, seed=g.seed, rows=rows, cols=cols)
                )
        elif g.kind == "ring-cliques":
            n_cliques = max(2, min(g.n_cliques or 2, n // 2))
            clique = max(2, n // n_cliques)
            if n_cliques * clique < g.n:
                out.append(
                    GraphSpec(
                        kind=g.kind, n=n_cliques * clique, seed=g.seed,
                        n_cliques=n_cliques, clique_size=clique,
                    )
                )
        elif g.kind == "banded":
            out.append(
                GraphSpec(
                    kind=g.kind, n=n, seed=g.seed,
                    bandwidth=max(1, min(g.bandwidth, n - 1)),
                )
            )
        elif g.kind == "erdos-renyi":
            out.append(GraphSpec(kind=g.kind, n=n, seed=g.seed, density=g.density))
        else:
            out.append(GraphSpec(kind=g.kind, n=n, seed=g.seed))
    # dedupe, preserve aggressive-first order
    seen, uniq = set(), []
    for c in out:
        if c not in seen:
            seen.add(c)
            uniq.append(c)
    return uniq


def _policy_still_needed(specs: tuple[str, ...]) -> bool:
    return any(spec.partition(":")[0].strip() in _POLICY_DEPENDENT for spec in specs)


def shrink(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    *,
    max_evals: int = 200,
    log: Optional[Callable[[str], None]] = None,
) -> ShrinkResult:
    """Minimize ``scenario`` under the ``still_fails`` predicate.

    ``still_fails`` must return True when a candidate reproduces the
    original failure (same oracle family).  The scenario passed in is
    assumed failing; the result's scenario is guaranteed to satisfy the
    predicate (it is only replaced by candidates that do).
    """
    result = ShrinkResult(scenario=scenario)

    def attempt(name: str, candidate: Scenario) -> bool:
        if candidate == result.scenario or result.evals >= max_evals:
            return False
        result.evals += 1
        try:
            failed = bool(still_fails(candidate))
        except Exception:
            # A candidate that breaks the predicate machinery itself is
            # not a smaller repro of the *same* failure.
            failed = False
        if failed:
            result.scenario = candidate
            result.steps.append((name, candidate.scenario_id))
            if log is not None:
                log(f"shrink[{name}] -> {candidate.describe()}")
            return True
        return False

    progress = True
    while progress and result.evals < max_evals:
        progress = False
        s = result.scenario

        # Pass 1: drop fault specs one at a time (policy last).
        specs = list(s.fault_specs)
        order = sorted(
            range(len(specs)), key=lambda i: specs[i].startswith("policy")
        )
        for i in order:
            reduced = tuple(specs[:i] + specs[i + 1:])
            if specs[i].startswith("policy") and _policy_still_needed(reduced):
                continue
            if attempt("drop-fault", s.replace(fault_specs=reduced)):
                progress = True
                break
        if progress:
            continue

        # Pass 2: shrink the graph.
        for g in _graph_candidates(s.graph):
            cand = s.replace(graph=g, block_size=min(s.block_size, g.n))
            if attempt("shrink-graph", cand):
                progress = True
                break
        if progress:
            continue

        # Pass 3: shrink the block size.
        for b in (2, 4, s.block_size // 2):
            if 2 <= b < s.block_size and attempt(
                "shrink-block", s.replace(block_size=b)
            ):
                progress = True
                break
        if progress:
            continue

        # Pass 4: simplify the execution environment.  Fleet reductions
        # come first: a one-job fleet (or a plain solve, once the
        # resilience policy proves irrelevant) dominates triage cost the
        # same way a smaller fault plan does.
        for name, cand in (
            ("shrink-jobs", s.replace(jobs=1)),
            ("no-deadline", s.replace(deadline=None)),
            ("no-resilience", s.replace(resilience=None, deadline=None)),
            ("shrink-ranks", s.replace(n_nodes=1, ranks_per_node=1)),
            ("shrink-ranks", s.replace(n_nodes=1, ranks_per_node=min(2, s.ranks_per_node))),
            ("simplify-variant", s.replace(variant=_SIMPLER_VARIANT.get(s.variant, s.variant))),
            ("reference-backend", s.replace(kernel_backend="reference")),
            ("verify-off", s.replace(verify="off")),
            ("no-determinism", s.replace(check_determinism=False)),
            ("no-sparsity", s.replace(exploit_sparsity=False)),
        ):
            if attempt(name, cand):
                progress = True
                break

    return result
