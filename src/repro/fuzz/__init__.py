"""Coverage-driven scenario fuzzer and chaos autopilot.

This package turns the repo's whole configuration space - graph
generators, machine specs, schedule variants, kernel backends, fault
plans, verification modes, observability sinks - into a fuzzable
surface with correctness oracles on top (see docs/FUZZING.md):

* :mod:`~repro.fuzz.scenario` - the content-addressed unit of work;
* :mod:`~repro.fuzz.generator` - seeded, constraint-aware generation;
* :mod:`~repro.fuzz.executor` - sandboxed execution and outcome
  classification on the stable exit-code vocabulary;
* :mod:`~repro.fuzz.oracles` - equivalence / determinism /
  certificate / perf-model oracle families;
* :mod:`~repro.fuzz.shrink` - delta-debugging minimization;
* :mod:`~repro.fuzz.corpus` - the replayable JSONL scenario database;
* :mod:`~repro.fuzz.autopilot` - the budgeted session driving it all,
  with MetricsRegistry-backed coverage steering.

CLI surface: ``repro-apsp fuzz run|replay|corpus``.
"""

from .autopilot import CoverageMap, Finding, FuzzReport, FuzzSession
from .corpus import Corpus, CorpusRecord, ReplayReport
from .executor import Outcome, ScenarioExecutor, run_scenario
from .generator import GeneratorConfig, ScenarioGenerator, bit_exact_backends
from .oracles import OracleSuite, OracleViolation
from .scenario import GRAPH_KINDS, GraphSpec, Scenario
from .shrink import ShrinkResult, shrink

__all__ = [
    "GraphSpec",
    "Scenario",
    "GRAPH_KINDS",
    "GeneratorConfig",
    "ScenarioGenerator",
    "bit_exact_backends",
    "Outcome",
    "ScenarioExecutor",
    "run_scenario",
    "OracleSuite",
    "OracleViolation",
    "ShrinkResult",
    "shrink",
    "Corpus",
    "CorpusRecord",
    "ReplayReport",
    "CoverageMap",
    "Finding",
    "FuzzReport",
    "FuzzSession",
]
