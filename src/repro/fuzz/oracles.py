"""The fuzzer's oracle families: what "correct" means for a scenario.

Five families, per the paper's correctness story (bit-exact tropical
replay) and the repo's fitted perf model:

1. **equivalence** - the distance matrix must byte-match a clean
   single-rank reference solve of the same graph at the same block
   size (variant/backends/faults/verification must all be invisible in
   the result);
2. **resilience** - the retry-determinism oracle for fleet scenarios
   (multi-job and/or self-healing-armed, :mod:`repro.sched.resilience`):
   every job that ends DONE must byte-match the clean single-rank
   reference solve of its own graph *even when the scheduler retried,
   checkpoint-resumed, or re-planned it*, and the fleet must respect
   its configured retry budget;
3. **determinism** - running the same scenario twice must produce the
   same digest, makespan, and certificate;
4. **certificate** - the verification certificate must exist exactly
   when armed and be internally consistent with the faults report
   (counters non-negative, repairs never exceed detections, no SDC
   "detected" on runs that injected no memory faults);
5. **perf-model** - a clean instrumented run must not diverge from the
   pooled fitted Eq. 1 prediction (:mod:`repro.obs.validation`) beyond
   the pool's own fitted error bars.  At benchmark scale the constants
   predict within ~17% (pinned by tests/test_validation.py); fuzz-scale
   graphs (n = 8..40) sit far outside that regime - measured fit error
   there runs to ~4x - so this family only flags *gross* divergence
   (default: beyond 4x the pool's worst self-fit error and at least
   500%), the signature of a stalled schedule or double-charged cost,
   not ordinary small-n model misfit.

An executor-level **crash** family covers what the oracles never see:
wall-clock timeouts, hard child deaths, and
:class:`~repro.errors.InternalError` (unexpected exceptions).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

from .executor import Outcome, run_scenario
from .scenario import Scenario

__all__ = ["OracleViolation", "OracleSuite"]

#: Exit codes the crash family flags (InternalError / timeout / child
#: death); every other classified error is a *modeled* failure mode.
UNEXPECTED_EXIT_CODES = (14, 124, 125)


@dataclass
class OracleViolation:
    """One oracle finding (JSON-able, lands in the corpus record)."""

    family: str  # "equivalence" | "resilience" | "determinism" | "certificate" | "perf-model" | "crash"
    detail: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "OracleViolation":
        return cls(
            family=raw["family"], detail=raw.get("detail", ""), data=raw.get("data", {})
        )


def _reconstruct_measurement(raw: dict):
    from ..obs.validation import VariantMeasurement

    known = {f.name for f in dataclasses.fields(VariantMeasurement)}
    return VariantMeasurement(**{k: v for k, v in raw.items() if k in known})


class OracleSuite:
    """Stateful oracle runner: caches reference digests per graph and
    accumulates a per-machine calibration pool for the perf model."""

    def __init__(
        self,
        *,
        runner: Optional[Callable[[Scenario], Outcome]] = None,
        perf_min_fit: int = 8,
        perf_base_tolerance: float = 5.0,
        perf_safety: float = 4.0,
        perf_pool_cap: int = 64,
    ):
        #: How a scenario is re-executed for the determinism oracle;
        #: in-process by default (the simulation is deterministic, so
        #: sandboxing the double-run buys nothing).
        self.runner = runner or run_scenario
        self.perf_min_fit = perf_min_fit
        self.perf_base_tolerance = perf_base_tolerance
        self.perf_safety = perf_safety
        self.perf_pool_cap = perf_pool_cap
        self._ref_cache: dict[tuple, str] = {}
        self._perf_pools: dict[str, list] = {}
        #: Oracle work split, in seconds, for the throughput benchmark.
        self.timings: dict[str, float] = {}

    # -- reference solve ---------------------------------------------------
    def reference_digest(self, scenario: Scenario) -> str:
        """Digest of the clean single-rank baseline solve of the
        scenario's graph at its block size (cached per graph x b)."""
        return self._graph_reference_digest(
            scenario.graph, scenario.block_size, scenario.machine
        )

    def _graph_reference_digest(self, graph_spec, block_size: int, machine: str) -> str:
        key = (graph_spec, block_size)
        cached = self._ref_cache.get(key)
        if cached is not None:
            return cached
        from ..api import SolveConfig, solve
        from .executor import dist_digest

        result = solve(
            graph_spec.build(),
            SolveConfig(
                variant="baseline",
                block_size=block_size,
                kernel_backend="reference",
                machine=machine,
                n_nodes=1,
                ranks_per_node=1,
                fault_plan=(),
            ),
        )
        digest = dist_digest(result.dist)
        self._ref_cache[key] = digest
        return digest

    # -- entry point -------------------------------------------------------
    def check(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        import time

        violations: list[OracleViolation] = []
        for family, fn in (
            ("crash", self._check_crash),
            ("equivalence", self._check_equivalence),
            ("resilience", self._check_resilience),
            ("determinism", self._check_determinism),
            ("certificate", self._check_certificate),
            ("perf-model", self._check_perf),
        ):
            t0 = time.perf_counter()
            violations.extend(fn(scenario, outcome))
            self.timings[family] = self.timings.get(family, 0.0) + time.perf_counter() - t0
        return violations

    # -- family: crash -----------------------------------------------------
    def _check_crash(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        if outcome.exit_code in UNEXPECTED_EXIT_CODES:
            return [
                OracleViolation(
                    "crash",
                    f"{outcome.status} (exit {outcome.exit_code}): "
                    f"{outcome.error_type or ''} {outcome.error or ''}".strip(),
                    {"exit_code": outcome.exit_code, "traceback": outcome.traceback},
                )
            ]
        return []

    # -- family: equivalence ----------------------------------------------
    @staticmethod
    def _flips_applied(outcome: Outcome) -> float:
        counters = outcome.fault_counters or {}
        return sum(
            counters.get(key, 0)
            for key in ("faults.block_flips", "faults.ckpt_flips", "faults.oog_flips")
        )

    def _check_equivalence(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        if not outcome.ok or outcome.dist_digest is None:
            return []
        if scenario.jobs > 1:
            # Multi-job fleets store a *combined* digest; per-job
            # equivalence is the resilience family's job.
            return []
        if "memflip" in scenario.fault_classes() and self._flips_applied(outcome) > 0:
            # An applied upset may escape even an armed verifier (the
            # closure is not checksum-guarded and the sentinel samples;
            # docs/FAULTS.md) - detector *coverage* is measured by the
            # SDC matrix, not asserted here.  Memflips that missed
            # (never applied) fall through: the result must match.
            return []
        expected = self.reference_digest(scenario)
        if outcome.dist_digest != expected:
            return [
                OracleViolation(
                    "equivalence",
                    "distance matrix diverged from the clean single-rank "
                    f"reference solve ({outcome.dist_digest} != {expected})",
                    {"got": outcome.dist_digest, "expected": expected},
                )
            ]
        return []

    # -- family: resilience -------------------------------------------------
    def _check_resilience(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        """The retry-determinism oracle for fleet scenarios: every job
        the self-healing layer carried to DONE - whether it was retried
        from a checkpoint, re-planned onto a shrunken fleet, or never
        failed at all - must byte-match the clean single-rank reference
        solve of its own graph.  The fleet's recovery bookkeeping must
        also respect its configured retry budget."""
        if not scenario.is_fleet or outcome.job_digests is None:
            return []
        out: list[OracleViolation] = []
        counters = outcome.fault_counters or {}
        retries = counters.get("fleet.resilience.retries", 0)
        if scenario.resilience is not None:
            budget = scenario.resilience.get("retry_budget", 32)
            if retries > budget:
                out.append(
                    OracleViolation(
                        "resilience",
                        f"fleet spent {retries:g} retries over its budget of {budget}",
                        {"retries": retries, "budget": budget},
                    )
                )
        if "memflip" in scenario.fault_classes() and self._flips_applied(outcome) > 0:
            return out  # applied upsets may legitimately escape (see equivalence)
        for j, digest in enumerate(outcome.job_digests):
            if digest is None:
                continue  # failed/poisoned/deadline-killed job: modeled outcome
            expected = self._graph_reference_digest(
                scenario.job_graph(j), scenario.block_size, scenario.machine
            )
            if digest != expected:
                out.append(
                    OracleViolation(
                        "resilience",
                        f"job {j} diverged from its clean solo solve after "
                        f"{retries:g} fleet retrie(s) ({digest} != {expected})",
                        {"job": j, "got": digest, "expected": expected,
                         "retries": retries},
                    )
                )
        return out

    # -- family: determinism ----------------------------------------------
    def _check_determinism(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        if not scenario.check_determinism:
            return []
        second = self.runner(scenario)
        first_key, second_key = outcome.digest_key(), second.digest_key()
        if first_key != second_key:
            return [
                OracleViolation(
                    "determinism",
                    "double run diverged: "
                    f"{first_key} != {second_key}",
                    {"first": list(first_key), "second": list(second_key)},
                )
            ]
        return []

    # -- family: certificate ----------------------------------------------
    def _check_certificate(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        if not outcome.ok:
            return []
        cert = outcome.certificate
        out: list[OracleViolation] = []
        if scenario.verify == "off":
            if cert is not None:
                out.append(
                    OracleViolation(
                        "certificate", "verify=off run produced a certificate", {"cert": cert}
                    )
                )
            return out
        if cert is None:
            return [
                OracleViolation(
                    "certificate", f"verify={scenario.verify} run produced no certificate"
                )
            ]
        if cert.get("mode") != scenario.verify:
            out.append(
                OracleViolation(
                    "certificate",
                    f"certificate mode {cert.get('mode')!r} != configured {scenario.verify!r}",
                    {"cert": cert},
                )
            )
        if not cert.get("passed", False):
            # A failing certificate must raise VerificationError, never
            # land on an ok outcome.
            out.append(
                OracleViolation(
                    "certificate", "completed run carries a failing certificate", {"cert": cert}
                )
            )
        counts = {
            k: cert.get(k, 0)
            for k in ("ops_checked", "sdc_detected", "repaired", "escalated",
                      "sentinel_violations")
        }
        if any(v < 0 for v in counts.values()):
            out.append(
                OracleViolation("certificate", f"negative certificate counters: {counts}")
            )
        if counts["repaired"] > counts["sdc_detected"]:
            out.append(
                OracleViolation(
                    "certificate",
                    f"repaired ({counts['repaired']}) exceeds detected "
                    f"({counts['sdc_detected']})",
                    {"cert": cert},
                )
            )
        # Faults-report consistency: detections/sentinel hits without
        # any injected upset mean the verifier is hallucinating SDC on
        # clean data - the inverse (an applied flip escaping) is a
        # measured-coverage outcome, not a violation (docs/FAULTS.md).
        detections = counts["sdc_detected"] + counts["sentinel_violations"]
        if detections > 0 and "memflip" not in scenario.fault_classes():
            out.append(
                OracleViolation(
                    "certificate",
                    f"verifier reported {detections:g} detection(s) with no "
                    "memory fault armed (false positive on clean data)",
                    {"cert": cert, "fault_counters": outcome.fault_counters},
                )
            )
        return out

    # -- family: perf-model ------------------------------------------------
    def _check_perf(self, scenario: Scenario, outcome: Outcome) -> list[OracleViolation]:
        if (
            not outcome.ok
            or outcome.measurement is None
            or scenario.fault_specs
            or not outcome.makespan
        ):
            return []
        from ..api import resolve_machine
        from ..machine import CostModel
        from ..obs.validation import _fitted_prediction, fit_constants

        cost = CostModel(resolve_machine(scenario.machine))
        m = _reconstruct_measurement(outcome.measurement)
        pool = self._perf_pools.setdefault(scenario.machine, [])
        out: list[OracleViolation] = []
        if len(pool) >= self.perf_min_fit:
            constants = fit_constants(pool, cost)

            def rel_err(meas) -> float:
                predicted = _fitted_prediction(meas, constants, cost)
                return abs(predicted - meas.makespan) / meas.makespan

            # The pool's own worst self-fit error is the error bar; a
            # new clean run diverging far beyond it means either the
            # perf model or the scheduler regressed.
            band = max(rel_err(p) for p in pool)
            tolerance = max(self.perf_base_tolerance, self.perf_safety * band)
            err = rel_err(m)
            if err > tolerance:
                out.append(
                    OracleViolation(
                        "perf-model",
                        f"fitted Eq. 1 prediction diverged {err:.0%} from the "
                        f"measured makespan (tolerance {tolerance:.0%}, "
                        f"calibration pool {len(pool)})",
                        {
                            "rel_err": err,
                            "tolerance": tolerance,
                            "makespan": m.makespan,
                            "pool": len(pool),
                        },
                    )
                )
        pool.append(m)
        del pool[: -self.perf_pool_cap]
        return out
