"""The fuzzer's unit of work: one fully-seeded solve scenario.

A :class:`Scenario` pins everything a run depends on - graph generator
and seed, cluster shape, variant, kernel backend, fault plan (as the
CLI spec strings, so corpus entries read like ``--faults`` flags),
verification mode, and observability arming - as plain JSON-able data.
The same scenario therefore always builds the same weight matrix and
the same :class:`~repro.api.SolveConfig`, which is what makes corpus
replay bit-exact: ``repro-apsp fuzz replay <id>`` re-runs the stored
tuple and byte-compares digests.

Scenario identity is content-addressed: :attr:`Scenario.scenario_id`
is a SHA-256 prefix of the canonical JSON, so two sessions generating
the same tuple agree on its name.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ConfigurationError

__all__ = ["GraphSpec", "Scenario", "GRAPH_KINDS"]

#: Graph-generator families the fuzzer samples from (all seeded, all
#: non-negative weights - Floyd-Warshall's negative-cycle-free domain).
GRAPH_KINDS = ("uniform", "erdos-renyi", "grid-road", "ring-cliques", "banded")


@dataclass(frozen=True)
class GraphSpec:
    """A seeded recipe for one weight matrix (see :mod:`repro.graphs`)."""

    kind: str
    n: int
    seed: int = 0
    #: erdos-renyi only: edge probability.
    density: float = 0.5
    #: banded only: connectivity half-width.
    bandwidth: int = 2
    #: grid-road only (n must equal rows*cols).
    rows: Optional[int] = None
    cols: Optional[int] = None
    #: ring-cliques only (n must equal n_cliques*clique_size).
    n_cliques: Optional[int] = None
    clique_size: Optional[int] = None

    def __post_init__(self):
        if self.kind not in GRAPH_KINDS:
            raise ConfigurationError(
                f"unknown graph kind {self.kind!r}; known: {list(GRAPH_KINDS)}"
            )
        if self.n < 2:
            raise ConfigurationError(f"graph needs n >= 2 vertices, got {self.n}")
        if self.kind == "erdos-renyi" and not 0.0 <= self.density <= 1.0:
            raise ConfigurationError(f"density must be in [0, 1], got {self.density}")
        if self.kind == "banded" and self.bandwidth < 1:
            raise ConfigurationError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.kind == "grid-road":
            if not self.rows or not self.cols or self.rows * self.cols != self.n:
                raise ConfigurationError(
                    f"grid-road needs rows*cols == n, got {self.rows}x{self.cols} != {self.n}"
                )
        if self.kind == "ring-cliques":
            if (
                not self.n_cliques
                or not self.clique_size
                or self.n_cliques * self.clique_size != self.n
            ):
                raise ConfigurationError(
                    f"ring-cliques needs n_cliques*clique_size == n, "
                    f"got {self.n_cliques}*{self.clique_size} != {self.n}"
                )

    def build(self):
        """Materialize the weight matrix (deterministic per spec)."""
        from ..graphs import (
            banded_graph,
            erdos_renyi,
            grid_road_network,
            ring_of_cliques,
            uniform_random_dense,
        )

        if self.kind == "uniform":
            return uniform_random_dense(self.n, seed=self.seed)
        if self.kind == "erdos-renyi":
            return erdos_renyi(self.n, self.density, seed=self.seed)
        if self.kind == "grid-road":
            return grid_road_network(self.rows, self.cols, seed=self.seed)
        if self.kind == "ring-cliques":
            return ring_of_cliques(self.n_cliques, self.clique_size)
        return banded_graph(self.n, self.bandwidth, seed=self.seed)


@dataclass(frozen=True)
class Scenario:
    """One point of the fuzzed configuration space.

    ``fault_specs`` holds CLI-grammar strings (``drop:src=0,...``), so
    every corpus entry doubles as a copy-pasteable ``--faults`` repro
    and every generated scenario exercises the hardened spec parser.
    """

    graph: GraphSpec
    variant: str = "async"
    block_size: int = 8
    kernel_backend: Optional[str] = None
    machine: str = "summit"
    n_nodes: int = 1
    ranks_per_node: int = 2
    fault_specs: tuple[str, ...] = ()
    fault_seed: int = 0
    verify: str = "off"
    exploit_sparsity: bool = False
    #: Arm the MetricsRegistry + span tracer (feeds the perf oracle).
    instrument: bool = True
    #: Double-run digest comparison (oracle family 2) for this scenario.
    check_determinism: bool = False
    # -- fleet scenarios (multi-job + resilience; see docs/RESILIENCE.md) --
    #: Concurrent jobs on one ClusterScheduler; 1 = classic single solve
    #: unless ``resilience`` is set (then a one-job armed fleet).
    jobs: int = 1
    #: :class:`~repro.sched.ResiliencePolicy` object form (retry /
    #: health / retry_budget knobs); None = self-healing disarmed.
    resilience: Optional[dict] = None
    #: Per-job simulated-seconds SLO (needs ``resilience``); exceeded
    #: deadlines kill with exit 16 - a modeled outcome, not a finding.
    deadline: Optional[float] = None

    def __post_init__(self):
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool) or self.jobs < 1:
            raise ConfigurationError(f"scenario jobs must be an int >= 1, got {self.jobs!r}")
        if self.resilience is not None:
            from ..sched.resilience import ResiliencePolicy

            ResiliencePolicy.from_dict(self.resilience)  # validate eagerly
        if self.deadline is not None:
            if isinstance(self.deadline, bool) or not isinstance(self.deadline, (int, float)):
                raise ConfigurationError(
                    f"scenario deadline must be a number, got {self.deadline!r}"
                )
            if self.deadline <= 0:
                raise ConfigurationError(f"scenario deadline must be > 0, got {self.deadline}")
            if self.resilience is None:
                raise ConfigurationError(
                    "scenario deadline needs a 'resilience' policy (per-job "
                    "deadlines are enforced by the self-healing layer)"
                )

    @property
    def is_fleet(self) -> bool:
        """Does this scenario run on a ClusterScheduler (multi-job
        and/or resilience-armed) instead of a plain solve?"""
        return self.jobs > 1 or self.resilience is not None

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["graph"] = {k: v for k, v in out["graph"].items() if v is not None}
        out["fault_specs"] = list(self.fault_specs)
        # Fleet fields are omitted at their defaults so every pre-fleet
        # scenario keeps its content-addressed id (corpus stability).
        if self.jobs == 1:
            del out["jobs"]
        if self.resilience is None:
            del out["resilience"]
        if self.deadline is None:
            del out["deadline"]
        return out

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def scenario_id(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:12]

    @classmethod
    def from_dict(cls, raw: dict) -> "Scenario":
        if not isinstance(raw, dict):
            raise ConfigurationError(f"scenario must be a JSON object, got {raw!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(raw)
        graph = kwargs.get("graph")
        if not isinstance(graph, dict):
            raise ConfigurationError("scenario 'graph' must be a JSON object")
        gknown = {f.name for f in dataclasses.fields(GraphSpec)}
        gunknown = set(graph) - gknown
        if gunknown:
            raise ConfigurationError(
                f"unknown graph keys {sorted(gunknown)}; known: {sorted(gknown)}"
            )
        kwargs["graph"] = GraphSpec(**graph)
        kwargs["fault_specs"] = tuple(kwargs.get("fault_specs", ()))
        return cls(**kwargs)

    def replace(self, **changes: Any) -> "Scenario":
        return dataclasses.replace(self, **changes)

    # -- materialization ---------------------------------------------------
    def build_graph(self):
        return self.graph.build()

    def job_graph(self, index: int) -> GraphSpec:
        """Fleet job ``index``'s graph spec: the scenario's recipe with
        a per-job seed offset, so tenants solve distinct (but still
        fully deterministic) instances and per-job digests are
        meaningful."""
        if index == 0:
            return self.graph
        return dataclasses.replace(self.graph, seed=self.graph.seed + index)

    def fault_plan(self):
        """Parse ``fault_specs`` into a FaultPlan (None when unarmed) -
        through the same hardened parser users hit."""
        from ..faults.plan import FaultPlan

        if not self.fault_specs:
            return None
        return FaultPlan.from_specs(list(self.fault_specs), seed=self.fault_seed)

    def to_solve_config(self):
        """The :class:`~repro.api.SolveConfig` this scenario runs as."""
        from ..api import ObsSinks, SolveConfig

        return SolveConfig(
            variant=self.variant,
            block_size=self.block_size,
            kernel_backend=self.kernel_backend,
            machine=self.machine,
            n_nodes=self.n_nodes,
            ranks_per_node=self.ranks_per_node,
            fault_plan=list(self.fault_specs) if self.fault_specs else (),
            fault_seed=self.fault_seed,
            verify=self.verify,
            exploit_sparsity=self.exploit_sparsity,
            trace=self.instrument,
            obs=ObsSinks(metrics=self.instrument),
        )

    def fault_classes(self) -> tuple[str, ...]:
        """The distinct fault kinds this scenario injects (coverage-map
        axis); ``("none",)`` when unarmed."""
        kinds = sorted({spec.partition(":")[0].strip().lower() for spec in self.fault_specs
                        if not spec.startswith("policy")})
        return tuple(kinds) or ("none",)

    def describe(self) -> str:
        faults = ",".join(self.fault_classes())
        fleet = ""
        if self.is_fleet:
            fleet = f" fleet(jobs={self.jobs}"
            if self.resilience is not None:
                fleet += ",resilience"
            if self.deadline is not None:
                fleet += f",deadline={self.deadline:g}"
            fleet += ")"
        return (
            f"{self.scenario_id}: {self.graph.kind} n={self.graph.n} b={self.block_size} "
            f"{self.variant} backend={self.kernel_backend or 'default'} "
            f"{self.machine} {self.n_nodes}x{self.ranks_per_node} "
            f"faults=[{faults}] verify={self.verify}{fleet}"
        )
