"""Seeded scenario generation with optional coverage steering.

:class:`ScenarioGenerator` draws scenarios from one
``numpy.random.default_rng(seed)`` stream, so a (seed, index) pair
always names the same scenario - the property the replayable corpus
and the fixed-seed CI budgets rest on.

Generation is constraint-aware rather than uniformly random, because
the interesting region is "legal but weird", not "rejected by argument
validation":

* message faults always ride with an armed ``policy:timeout`` -
  a dropped panel with blocking receives is a designed deadlock, not a
  finding;
* crashes usually bring checkpointing (recoverable chaos); sometimes
  deliberately not, to exercise the RankFailure path;
* memory flips often ride with checkpoint+restart policies so upsets
  land on both resident blocks and stored snapshots (an applied flip
  may legitimately escape detection - the equivalence oracle exempts
  applied-flip runs and the SDC matrix measures coverage);
* only bit-exact kernel backends (``rtol == 0``) are sampled - the
  f32 family legitimately diverges from the byte-equality oracle.

With a :class:`~repro.fuzz.autopilot.CoverageMap` attached, each draw
first picks a target (variant x fault-class x verify) cell weighted by
1/(1+hits) - the chaos-autopilot bias toward under-covered regions.

Armed scenarios may additionally *stack* 1-2 companion fault classes
(``p_multi_fault``): a crash during a NIC brownout, a memory flip while
a straggler slows recovery.  Each class contributes its own specs; the
policies merge into one ``policy:`` spec with the primary class winning
key conflicts.  Class-pair coverage accrues under the map's
``fuzz.pairs`` cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .scenario import GraphSpec, Scenario

__all__ = ["GeneratorConfig", "ScenarioGenerator", "bit_exact_backends"]

#: All solver variants (the paper's five plus the schedule-IR-unlocked
#: offload-pipelined).
ALL_VARIANTS = (
    "baseline",
    "pipelined",
    "reordering",
    "async",
    "offload",
    "offload-pipelined",
)

VERIFY_MODES = ("off", "checksum", "full")

#: Fault classes as coverage-map coordinates ("none" = unarmed run).
FAULT_CLASSES = (
    "none",
    "drop",
    "dup",
    "corrupt",
    "nic",
    "straggler",
    "crash",
    "oom",
    "memflip",
)

#: (n_nodes, ranks_per_node) shapes that place cleanly for every
#: variant (rank counts 1, 2, 4, 6, 8).
CLUSTER_SHAPES = ((1, 1), (1, 2), (2, 1), (2, 2), (1, 4), (2, 3), (3, 2), (2, 4))


def bit_exact_backends() -> tuple[str, ...]:
    """Available kernel backends whose results byte-match reference
    (``rtol == 0``) - the pool the equivalence oracle can judge."""
    from ..semiring.backends import available_backends

    return tuple(
        sorted(
            name
            for name, b in available_backends().items()
            if getattr(b, "rtol", 0.0) == 0.0
        )
    )


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the scenario space (see docs/FUZZING.md)."""

    n_min: int = 8
    n_max: int = 40
    variants: Sequence[str] = ALL_VARIANTS
    #: None = all available bit-exact backends at generator build time.
    backends: Optional[Sequence[str]] = None
    machines: Sequence[str] = ("summit", "frontier-like", "workstation")
    verify_modes: Sequence[str] = VERIFY_MODES
    fault_classes: Sequence[str] = FAULT_CLASSES
    cluster_shapes: Sequence[tuple[int, int]] = CLUSTER_SHAPES
    #: Probability that a scenario arms any faults at all (ignored when
    #: coverage steering picks the class).
    p_faulted: float = 0.65
    #: Probability an armed scenario stacks 1-2 *extra* fault classes on
    #: top of the primary one (crash during a NIC brownout, memflip
    #: while a straggler slows recovery, ...).  Class-pair coverage is
    #: tracked separately under ``fuzz.pairs`` cells.
    p_multi_fault: float = 0.35
    #: Ceiling on distinct fault classes per scenario.
    max_fault_classes: int = 3
    #: Probability a scenario double-runs for the determinism oracle.
    p_determinism: float = 0.25
    #: Probability of exploiting block sparsity on sparse graphs.
    p_sparsity: float = 0.25
    #: Probability a scenario becomes a *fleet* scenario: jobs run on a
    #: resilience-armed ClusterScheduler with drawn retry/quarantine
    #: knobs, judged by the retry-determinism oracle.  Memflip-bearing
    #: scenarios never convert (the applied-flip escape exemption would
    #: hollow the oracle out).
    p_fleet: float = 0.25
    #: Fleet sizes to draw from (1 = a single armed job).
    fleet_jobs: Sequence[int] = (1, 2, 3)
    #: Probability a fleet scenario arms a (generous) per-job deadline,
    #: exercising the watchdog without SLO-killing the jobs.
    p_deadline: float = 0.25


@dataclass
class ScenarioGenerator:
    """Deterministic scenario stream: ``ScenarioGenerator(seed).draw()``."""

    seed: int = 0
    config: GeneratorConfig = field(default_factory=GeneratorConfig)
    #: Optional CoverageMap; when set, draws are biased toward
    #: under-covered (variant x fault-class x verify) cells.
    coverage: Optional[object] = None

    def __post_init__(self):
        self.rng = np.random.default_rng(self.seed)
        self._backends = tuple(self.config.backends or bit_exact_backends())
        if not self._backends:
            self._backends = ("reference",)
        self.drawn = 0

    # -- draws -------------------------------------------------------------
    def draw(self) -> Scenario:
        rng = self.rng
        cfg = self.config
        variant, fault_class, verify = self._pick_cell()
        graph = self._draw_graph()
        n = graph.n
        block_size = int(rng.choice([4, 6, 8, 12, 16]))
        block_size = max(2, min(block_size, n))
        n_nodes, ranks_per_node = cfg.cluster_shapes[
            int(rng.integers(len(cfg.cluster_shapes)))
        ]
        machine = str(rng.choice(cfg.machines))
        fault_classes = self._pick_companions(fault_class)
        fleet = rng.random() < cfg.p_fleet and "memflip" not in fault_classes
        if fleet:
            from ..api import resolve_machine

            # The shared fleet really builds the machine's cluster, so
            # (unlike a plain solve) n_nodes is capacity-checked; clamp
            # *before* drawing faults so their ranks stay in range.
            n_nodes = min(n_nodes, resolve_machine(machine).max_nodes)
        ranks = n_nodes * ranks_per_node
        fault_specs = self._draw_faults(fault_classes, ranks, n_nodes, n, block_size)
        jobs, resilience, deadline = 1, None, None
        if fleet:
            jobs = int(rng.choice(cfg.fleet_jobs))
            resilience = self._draw_resilience()
            fault_specs = self._fleet_faults(fault_specs)
            if rng.random() < cfg.p_deadline:
                # Generous vs the ~1e-3 s simulated makespans at fuzz
                # scale: the watchdog arms, the SLO is met.
                deadline = round(float(rng.uniform(0.5, 2.0)), 4)
        sparse_kinds = ("erdos-renyi", "banded", "grid-road", "ring-cliques")
        scenario = Scenario(
            graph=graph,
            variant=variant,
            block_size=block_size,
            kernel_backend=str(rng.choice(self._backends)),
            machine=machine,
            n_nodes=n_nodes,
            ranks_per_node=ranks_per_node,
            fault_specs=tuple(fault_specs),
            fault_seed=int(rng.integers(2**31)),
            verify=verify,
            exploit_sparsity=bool(
                graph.kind in sparse_kinds and rng.random() < cfg.p_sparsity
            ),
            instrument=True,
            check_determinism=bool(rng.random() < cfg.p_determinism),
            jobs=jobs,
            resilience=resilience,
            deadline=deadline,
        )
        self.drawn += 1
        return scenario

    def _draw_resilience(self) -> dict:
        """One fleet's self-healing policy, in the object form
        :meth:`repro.sched.ResiliencePolicy.from_dict` accepts: retry
        backoff/attempt knobs, device-health quarantine knobs, and a
        fleet-wide retry budget."""
        rng = self.rng
        return {
            "retry": {
                "max_attempts": int(rng.integers(2, 5)),
                "backoff_base": round(float(rng.uniform(1e-3, 1e-2)), 6),
                "backoff_factor": float(rng.choice([1.5, 2.0])),
                "jitter": round(float(rng.uniform(0.0, 0.5)), 3),
                "seed": int(rng.integers(2**16)),
            },
            "health": {
                "fault_threshold": int(rng.integers(1, 4)),
                "probation": round(float(rng.uniform(0.005, 0.05)), 6),
            },
            "retry_budget": int(rng.integers(8, 33)),
        }

    def _fleet_faults(self, specs: list[str]) -> list[str]:
        """Adapt drawn fault specs for a fleet scenario: crashes and
        OOMs become terminal for the *attempt* (``restarts=0``, no OOM
        degrade) so recovery goes through the scheduler's retry layer
        instead of the in-run restart loop.  A coin flip keeps or drops
        mid-run checkpoints, exercising both checkpoint-carrying and
        from-scratch re-admission; message-fault liveness keys
        (timeout/retries) are preserved."""
        rng = self.rng
        out = [s for s in specs if not s.startswith("policy")]
        needs_policy = any(
            s.partition(":")[0] in ("crash", "oom", "drop", "dup", "corrupt")
            for s in out
        )
        if not needs_policy:
            return out
        policy: dict[str, str] = {"restarts": "0", "oom_degrade": "false"}
        for spec in specs:
            if not spec.startswith("policy"):
                continue
            for item in spec.partition(":")[2].split(","):
                key, _, value = item.partition("=")
                if key in ("timeout", "retries"):
                    policy[key] = value
        if rng.random() < 0.5:
            policy["ckpt"] = str(int(rng.choice([1, 2])))
        out.append("policy:" + ",".join(f"{k}={v}" for k, v in policy.items()))
        return out

    def _pick_cell(self) -> tuple[str, str, str]:
        rng = self.rng
        cfg = self.config
        if self.coverage is not None:
            cells = [
                (v, f, m)
                for v in cfg.variants
                for f in cfg.fault_classes
                for m in cfg.verify_modes
            ]
            hits = np.array([self.coverage.hits(*c) for c in cells], dtype=float)
            weights = 1.0 / (1.0 + hits)
            weights /= weights.sum()
            return cells[int(rng.choice(len(cells), p=weights))]
        variant = str(rng.choice(cfg.variants))
        verify = str(rng.choice(cfg.verify_modes))
        armed = [c for c in cfg.fault_classes if c != "none"]
        fault_class = (
            str(rng.choice(armed)) if armed and rng.random() < cfg.p_faulted else "none"
        )
        return variant, fault_class, verify

    def _draw_graph(self) -> GraphSpec:
        rng = self.rng
        cfg = self.config
        kind = str(rng.choice(("uniform", "erdos-renyi", "grid-road", "ring-cliques", "banded")))
        seed = int(rng.integers(2**31))
        n = int(rng.integers(cfg.n_min, cfg.n_max + 1))
        if kind == "erdos-renyi":
            return GraphSpec(
                kind=kind, n=n, seed=seed, density=float(rng.uniform(0.1, 0.9))
            )
        if kind == "grid-road":
            rows = int(rng.integers(2, max(3, int(np.sqrt(cfg.n_max)) + 1)))
            cols = int(np.clip(n // rows, 2, cfg.n_max // rows))
            return GraphSpec(kind=kind, n=rows * cols, seed=seed, rows=rows, cols=cols)
        if kind == "ring-cliques":
            n_cliques = int(rng.integers(2, 6))
            clique = int(np.clip(n // n_cliques, 2, max(2, cfg.n_max // n_cliques)))
            return GraphSpec(
                kind=kind, n=n_cliques * clique, seed=seed,
                n_cliques=n_cliques, clique_size=clique,
            )
        if kind == "banded":
            return GraphSpec(
                kind=kind, n=n, seed=seed, bandwidth=int(rng.integers(1, max(2, n // 4)))
            )
        return GraphSpec(kind=kind, n=n, seed=seed)

    def _pick_companions(self, fault_class: str) -> list[str]:
        """The scenario's full class list: the (coverage-steered)
        primary class, plus 0-2 extra armed classes with probability
        ``p_multi_fault`` - multi-fault scenarios are where recovery
        paths compose (and where class-*pair* coverage accrues)."""
        rng = self.rng
        cfg = self.config
        if fault_class == "none":
            return []
        classes = [fault_class]
        others = [c for c in cfg.fault_classes if c not in ("none", fault_class)]
        if others and rng.random() < cfg.p_multi_fault:
            n_extra = int(rng.integers(1, cfg.max_fault_classes))
            n_extra = min(n_extra, len(others))
            extras = rng.choice(len(others), size=n_extra, replace=False)
            classes.extend(others[int(i)] for i in extras)
        return classes

    def _draw_faults(
        self, fault_classes: Sequence[str], ranks: int, n_nodes: int, n: int, b: int
    ) -> list[str]:
        """Concrete specs for every class, with one *merged* policy
        spec: the primary class's policy keys win on conflict, later
        classes only fill gaps (so e.g. a deliberately unrecoverable
        crash's ``restarts=0`` survives an OOM companion)."""
        specs: list[str] = []
        policy: dict[str, str] = {}
        for fault_class in fault_classes:
            class_specs, class_policy = self._class_faults(
                fault_class, ranks, n_nodes, n, b
            )
            specs.extend(class_specs)
            for key, value in class_policy.items():
                policy.setdefault(key, value)
        if policy:
            specs.append("policy:" + ",".join(f"{k}={v}" for k, v in policy.items()))
        return specs

    def _class_faults(
        self, fault_class: str, ranks: int, n_nodes: int, n: int, b: int
    ) -> tuple[list[str], dict[str, str]]:
        rng = self.rng
        nb = max(1, -(-n // b))
        specs: list[str] = []
        policy: dict[str, str] = {}

        def rank() -> int:
            return int(rng.integers(ranks))

        if fault_class in ("drop", "dup", "corrupt"):
            for _ in range(int(rng.integers(1, 3))):
                if rng.random() < 0.6:
                    sel = f"nth={int(rng.integers(1, 6))}"
                else:
                    sel = f"p={float(rng.uniform(0.01, 0.15)):.3f}"
                parts = [sel]
                if rng.random() < 0.5 and ranks > 1:
                    parts.append(f"src={rank()}")
                if fault_class == "corrupt" and rng.random() < 0.5:
                    parts.append(f"bits={int(rng.integers(1, 4))}")
                specs.append(f"{fault_class}:" + ",".join(parts))
            # Blocking receives turn a dropped message into a designed
            # deadlock; retransmit needs an armed deadline.
            policy["timeout"] = f"{float(rng.uniform(5e-4, 2e-3)):.2e}"
            policy["retries"] = str(int(rng.integers(3, 8)))
        elif fault_class == "nic":
            t0 = float(rng.uniform(0, 1e-3))
            specs.append(
                f"nic:node={int(rng.integers(n_nodes))},"
                f"factor={float(rng.uniform(2, 8)):.2f},"
                f"t0={t0:.2e},t1={t0 + float(rng.uniform(1e-4, 2e-3)):.2e}"
            )
        elif fault_class == "straggler":
            specs.append(
                f"straggler:rank={rank()},factor={float(rng.uniform(1.5, 4)):.2f}"
            )
        elif fault_class == "crash":
            specs.append(f"crash:rank={rank()},at={float(rng.uniform(0, 1e-3)):.2e}")
            if rng.random() < 0.85:  # usually recoverable chaos
                policy["timeout"] = f"{float(rng.uniform(5e-4, 2e-3)):.2e}"
                policy["ckpt"] = str(int(rng.choice([1, 2, 4])))
                policy["restarts"] = str(int(rng.integers(2, 5)))
            else:  # deliberately unrecoverable: RankFailure path
                policy["restarts"] = "0"
        elif fault_class == "oom":
            specs.append(f"oom:rank={rank()},k={int(rng.integers(nb))}")
            policy["ckpt"] = str(int(rng.choice([1, 2])))
            policy["restarts"] = str(int(rng.integers(2, 5)))
        elif fault_class == "memflip":
            target = "block"
            if rng.random() < 0.2:
                target = "checkpoint"
            specs.append(
                f"memflip:rank={rank()},k={int(rng.integers(nb))},target={target},"
                f"bits={int(rng.integers(1, 3))}"
            )
            if target == "checkpoint" or rng.random() < 0.5:
                policy["ckpt"] = str(int(rng.choice([1, 2])))
                policy["restarts"] = str(int(rng.integers(2, 5)))
        return specs, policy
