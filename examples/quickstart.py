"""Quickstart: all-pairs shortest paths on a simulated multi-GPU cluster.

Generates the paper's workload (a dense uniform random graph), solves
APSP with every solver variant through the public ``repro.solve()``
facade on a small simulated cluster, verifies the answers against the
sequential blocked Floyd-Warshall oracle, and prints each run's
performance report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core import Variant, blocked_fw
from repro.graphs import uniform_random_dense


def main() -> None:
    n = 96
    print(f"Dense uniform random graph, n = {n} (the paper's §5.1.4 input)\n")
    weights = uniform_random_dense(n, seed=42)

    oracle = blocked_fw(weights, block_size=16)

    config = repro.SolveConfig(block_size=16, n_nodes=2, ranks_per_node=4)
    for variant in Variant:
        result = repro.solve(weights, config.replace(variant=variant.value))
        assert np.allclose(result.dist, oracle), f"{variant} diverged from oracle!"
        print(f"--- {variant.value} ---")
        print(result.report.summary())
        print()

    # The distances are real: query a few.
    result = repro.solve(weights, config.replace(variant="async"))
    print("sample shortest distances:")
    for src, dst in ((0, 1), (0, n - 1), (n // 2, 3)):
        print(f"  dist({src:3d} -> {dst:3d}) = {result.dist[src, dst]:.3f}")
    print("\nAll variants match the sequential Floyd-Warshall oracle.")


if __name__ == "__main__":
    main()
