"""One distributed engine, many path problems: the semiring view.

The paper frames APSP algebraically (§2.3): Floyd-Warshall is matrix
closure over the tropical (min,+) semiring, and the cuASR kernels it
builds on support other semirings.  Because this reproduction's
kernels, blocked FW, and all five distributed variants are generic
over :class:`repro.semiring.Semiring`, the *same* simulated cluster
solves:

* shortest paths            - (min, +)
* widest paths / bottleneck - (max, min): maximum deliverable flow
* reachability              - (or, and): boolean transitive closure
* minimax paths             - (min, max): smallest worst edge

Run:  python examples/semiring_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.core import apsp, blocked_fw
from repro.graphs import erdos_renyi
from repro.semiring import INF, MAX_MIN, MIN_MAX, MIN_PLUS, OR_AND


def distributed(matrix, semiring):
    return apsp(
        matrix,
        variant="async",
        block_size=8,
        n_nodes=2,
        ranks_per_node=2,
        semiring=semiring,
        check_negative_cycles=False,
    ).dist


def main() -> None:
    n = 32
    rng = np.random.default_rng(4)

    # --- shortest paths (the paper's problem) -----------------------------
    w = erdos_renyi(n, 0.25, seed=4)
    dist = distributed(w, MIN_PLUS)
    assert np.allclose(dist, blocked_fw(w, 8), equal_nan=True)
    print(f"(min,+)  shortest:   dist(0, {n - 1}) = {dist[0, n - 1]:.3f}")

    # --- widest paths over link capacities --------------------------------
    cap = np.full((n, n), -INF)
    np.fill_diagonal(cap, INF)
    mask = np.isfinite(w) & ~np.eye(n, dtype=bool)
    cap[mask] = rng.uniform(1, 100, mask.sum())  # Mbps per link
    widest = distributed(cap, MAX_MIN)
    ref = blocked_fw(cap, 8, semiring=MAX_MIN, check_negative_cycles=False)
    assert np.allclose(widest, ref)
    print(f"(max,min) widest:    capacity(0 -> {n - 1}) = {widest[0, n - 1]:.1f} Mbps")

    # --- boolean reachability ----------------------------------------------
    adj = np.isfinite(w) & ~np.eye(n, dtype=bool)
    np.fill_diagonal(adj, True)
    reach = distributed(adj, OR_AND)
    ref = blocked_fw(adj, 8, semiring=OR_AND, check_negative_cycles=False)
    assert np.array_equal(reach, ref)
    print(f"(or,and)  reach:     {int(reach.sum())} of {n * n} pairs connected")

    # --- minimax: smallest worst edge on any path --------------------------
    risk = np.full((n, n), INF)
    np.fill_diagonal(risk, -INF)
    risk[mask] = rng.uniform(0, 1, mask.sum())  # per-link failure risk
    minimax = distributed(risk, MIN_MAX)
    ref = blocked_fw(risk, 8, semiring=MIN_MAX, check_negative_cycles=False)
    assert np.allclose(minimax, ref)
    print(f"(min,max) minimax:   safest route 0 -> {n - 1} worst-link risk = "
          f"{minimax[0, n - 1]:.3f}")

    # --- consistency: widest path is achievable per min-plus graph ---------
    # (On the same topology, a pair reachable by (min,+) must be
    # reachable by (or,and), and vice versa.)
    assert np.array_equal(np.isfinite(dist), reach)
    print("\ncross-semiring consistency checks passed; every result verified "
          "against the sequential oracle.")


if __name__ == "__main__":
    main()
