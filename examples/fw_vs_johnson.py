"""Floyd-Warshall vs Johnson's algorithm (the paper's §6 trade-off).

Johnson's algorithm (Bellman-Ford reweighting + Dijkstra per source)
is asymptotically better on sparse graphs - O(mn + n² log n) vs FW's
O(n³) - but its priority-queue structure "is difficult to parallelize
for massively threaded architecture", which is why the paper bets on
FW + GPUs even at moderate sparsity.

This example makes the trade-off concrete:

1. verifies both algorithms agree on random graphs (including negative
   edges, where Johnson's reweighting earns its keep);
2. counts operations across densities to find the crossover;
3. shows the machine-model twist: at the GPU's SrGemm rate, FW's
   regular structure beats Johnson's scalar ops well below the naive
   op-count crossover.

Run:  python examples/fw_vs_johnson.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import blocked_fw
from repro.graphs import (
    erdos_renyi,
    estimated_fw_ops,
    estimated_johnson_ops,
    johnson,
)
from repro.machine import SUMMIT, CostModel


def agreement_check() -> None:
    print("--- correctness: Johnson == Floyd-Warshall ---")
    for p in (0.1, 0.5, 1.0):
        w = erdos_renyi(60, p, seed=int(p * 10))
        a = johnson(w)
        b = blocked_fw(w, 12)
        assert np.allclose(a, b, equal_nan=True)
        print(f"  density {p:.1f}: agree on all {w.shape[0]}^2 pairs")
    # Negative edges without negative cycles: perturb a non-negative
    # graph by vertex potentials, w'(u,v) = w(u,v) + phi(u) - phi(v).
    # Every cycle's weight is unchanged, so no negative cycles appear,
    # but individual edges go negative - exactly the case Johnson's
    # reweighting pass exists for.
    w = erdos_renyi(40, 0.3, seed=3)
    phi = np.random.default_rng(9).uniform(0, 4, 40)
    finite = np.isfinite(w) & ~np.eye(40, dtype=bool)
    w = np.where(finite, w + phi[:, None] - phi[None, :], w)
    np.fill_diagonal(w, 0.0)
    assert (w[finite] < 0).any(), "construction should yield negative edges"
    a = johnson(w)
    b = blocked_fw(w, 8)
    assert np.allclose(a, b, equal_nan=True)
    print("  negative edges: agree (reweighting pass verified)\n")


def opcount_crossover() -> None:
    print("--- op-count crossover (CPU view) ---")
    n = 100_000
    print(f"n = {n:,}; FW ops = {estimated_fw_ops(n):.2e}")
    for avg_degree in (4, 64, 1024, 16384, n // 4):
        m = avg_degree * n
        j = estimated_johnson_ops(n, m)
        winner = "Johnson" if j < estimated_fw_ops(n) else "Floyd-Warshall"
        print(f"  avg degree {avg_degree:>6,}: Johnson ops = {j:.2e}  -> {winner}")
    print()


def machine_view() -> None:
    print("--- machine view: GPU SrGemm rate vs scalar rate ---")
    cost = CostModel(SUMMIT)
    n = 100_000
    fw_time = estimated_fw_ops(n) / cost.srgemm_rate(768)
    print(f"FW at the GPU SrGemm rate ({cost.srgemm_rate(768) / 1e12:.1f} TF/s): "
          f"{fw_time:.0f} s on one GPU")
    scalar_rate = 25e9  # generous scalar/irregular rate
    for avg_degree in (4, 64, 1024):
        m = avg_degree * n
        j_time = estimated_johnson_ops(n, m) / scalar_rate
        winner = "Johnson" if j_time < fw_time else "Floyd-Warshall"
        print(f"  avg degree {avg_degree:>5,}: Johnson at {scalar_rate / 1e9:.0f} GF/s "
              f"scalar = {j_time:.0f} s -> {winner}")
    print("\nThe GPU shifts the crossover far toward sparsity - the paper's")
    print("argument for dense-FW even on moderately sparse graphs (§6).")


def wallclock_sanity() -> None:
    print("\n--- wall-clock sanity at small n (this machine) ---")
    for p in (0.05, 0.8):
        w = erdos_renyi(300, p, seed=1)
        t0 = time.perf_counter()
        johnson(w)
        tj = time.perf_counter() - t0
        t0 = time.perf_counter()
        blocked_fw(w, 50)
        tf = time.perf_counter() - t0
        print(f"  n=300 density {p:.2f}: Johnson {tj * 1e3:6.1f} ms, "
              f"blocked FW {tf * 1e3:6.1f} ms")


def main() -> None:
    agreement_check()
    opcount_crossover()
    machine_view()
    wallclock_sanity()


if __name__ == "__main__":
    main()
