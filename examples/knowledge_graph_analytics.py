"""Knowledge-graph relationship mining with APSP (the paper's motivating
application: "in knowledge graph analytics, the relationship mining
problems become computing Apsp in a large and dense graph").

Builds a synthetic knowledge graph - entities with power-law degree
(hub concepts + a long tail), edge weights encoding relation strength
(low weight = strong relation) - then:

1. computes APSP on the simulated cluster (offload variant, since real
   knowledge graphs are the memory-stressing case);
2. mines the closest relationships between entity pairs that share no
   direct edge (multi-hop inference);
3. exhibits the relationship *paths* using the path-generation
   extension;
4. keeps the analysis fresh under graph updates with incremental
   Floyd-Warshall instead of recomputing.

Run:  python examples/knowledge_graph_analytics.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import closeness_centrality, summarize
from repro.extensions import (
    IncrementalApsp,
    next_hop_from_distances,
    path_length,
    reconstruct_path,
)
from repro.graphs import power_law_graph


def main() -> None:
    n = 120
    weights = power_law_graph(n, seed=7, mean_degree=10.0, exponent=2.2)
    m = int(np.isfinite(weights).sum() - n)
    print(f"synthetic knowledge graph: {n} entities, {m} relations\n")

    # --- 1. APSP on the simulated cluster (memory-efficient variant) ---
    result = repro.solve(
        weights,
        variant="offload",
        block_size=20,
        n_nodes=2,
        ranks_per_node=4,
        mx_blocks=2,
        nx_blocks=2,
    )
    dist = result.dist
    print(result.report.summary())

    # --- 2. Mine the strongest *indirect* relationships ------------------
    no_edge = np.isinf(weights) & np.isfinite(dist) & ~np.eye(n, dtype=bool)
    pairs = np.argwhere(no_edge)
    strengths = dist[no_edge]
    order = np.argsort(strengths)[:5]
    print("\nstrongest inferred (multi-hop) relationships:")
    nxt = next_hop_from_distances(weights, dist)
    for idx in order:
        i, j = pairs[idx]
        path = reconstruct_path(nxt, int(i), int(j))
        assert abs(path_length(weights, path) - dist[i, j]) < 1e-9
        chain = " -> ".join(f"e{v}" for v in path)
        print(f"  e{i} ~ e{j}: distance {dist[i, j]:.3f} via {chain}")

    # --- 3. Hub analysis via the analytics layer -------------------------
    stats = summarize(dist)
    print(f"\ngraph summary: {stats}")
    closeness = closeness_centrality(dist)
    hubs = np.argsort(closeness)[::-1][:5]
    print("top-5 hub entities by closeness centrality:")
    for h in hubs:
        print(f"  e{h}: closeness {closeness[h]:.4f}, out-degree "
              f"{int(np.isfinite(weights[h]).sum() - 1)}")

    # --- 4. The graph evolves: incremental updates -----------------------
    inc = IncrementalApsp(weights, block_size=20)
    assert np.allclose(inc.dist, dist)
    rng = np.random.default_rng(3)
    print("\napplying 20 relation updates as one incremental batch:")
    updates = []
    for _ in range(20):
        u, v = rng.integers(0, n, 2)
        if u != v:
            updates.append((int(u), int(v), float(rng.uniform(0.5, 2.0))))
    inc.batch_update(updates)
    print(f"  fast-path updates: {inc.fast_updates}, full recomputes: {inc.recomputes}")
    i, j = pairs[order[0]]
    print(f"  refreshed distance e{i} ~ e{j}: {inc.distance(int(i), int(j)):.3f} "
          f"(was {dist[i, j]:.3f})")


if __name__ == "__main__":
    main()
