"""Capacity planning with the paper's performance models (§2.7, §3.4,
§4.5, Eq. 5) - before burning node-hours.

Given a target problem (vertices) and a machine (Summit by default),
this example:

1. predicts runtime and the compute/communication balance with Eq. 1;
2. picks the process grid, rank placement, block size and stream count
   with the §3.4/§4.5-driven tuner;
3. decides whether the problem *fits* in aggregate GPU memory, and if
   not, what the offload variant needs;
4. cross-checks the prediction against a (hollow) simulated run.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import apsp
from repro.machine import SUMMIT, CostModel
from repro.perfmodel import (
    min_offload_block_size,
    oog_pipeline_cost,
    oog_stage_costs,
    parallel_fw_cost,
    tune,
)


def plan(n: float, n_nodes: int, ranks_per_node: int = 12) -> None:
    cost = CostModel(SUMMIT)
    print(f"=== plan: n = {n:,.0f} vertices on {n_nodes} Summit nodes "
          f"({ranks_per_node} ranks/node) ===")

    report = tune(cost, n, n_nodes, ranks_per_node)
    print("tuner:", report.summary())

    br = parallel_fw_cost(cost, n, report.block_size, report.p_r, report.p_c,
                          gpus_share=2)
    regime = "compute-bound" if br.compute > br.bandwidth else "bandwidth-bound"
    print(f"Eq. 1 terms: compute {br.compute:.2f}s, bandwidth {br.bandwidth:.2f}s, "
          f"latency {br.latency * 1e3:.2f}ms -> {regime}")

    # --- memory feasibility ----------------------------------------------
    matrix_bytes = n * n * 4
    hbm_total = n_nodes * SUMMIT.node.gpus_per_node * SUMMIT.node.gpu.hbm_bytes
    dram_total = n_nodes * SUMMIT.node.dram_bytes
    print(f"distance matrix: {matrix_bytes / 1e12:.2f} TB; aggregate HBM "
          f"{hbm_total / 1e12:.2f} TB; aggregate DRAM {dram_total / 1e12:.2f} TB")
    if matrix_bytes < 0.8 * hbm_total:
        print("fits in GPU memory: use Co-ParallelFw (variant='async')")
    elif matrix_bytes < 0.8 * dram_total:
        floor = min_offload_block_size(cost)
        local = n / max(report.p_r, report.p_c)
        stages = oog_stage_costs(cost, local, local, max(report.block_size, floor))
        print(f"beyond GPU memory -> Me-ParallelFw (variant='offload'); "
              f"Eq. 5 block floor {floor:.0f}; per-iteration ooGSrGemm "
              f"{oog_pipeline_cost(stages, 3):.3f}s at 3 streams")
    else:
        print("does not fit in host DRAM either: need more nodes")
    print()


def cross_check() -> None:
    """Compare the Eq. 1 prediction with a simulated run."""
    print("=== cross-check: model vs simulator (hollow run) ===")
    nb, nodes, rpn, b = 64, 8, 8, 768.0
    n_virt = nb * b
    cost = CostModel(SUMMIT)
    rep = tune(cost, n_virt, nodes, rpn)
    w = np.zeros((nb, nb), dtype=np.float32)
    sim = apsp(w, variant="async", block_size=1, n_nodes=nodes, ranks_per_node=rpn,
               dim_scale=b, compute_numerics=False, collect_result=False).report
    print(f"model:     {rep.predicted.total:8.3f} s")
    print(f"simulator: {sim.elapsed:8.3f} s  "
          f"({sim.petaflops:.4f} PF/s, {sim.effective_bandwidth() / 1e9:.2f} GB/s/node)")
    ratio = sim.elapsed / rep.predicted.total
    print(f"sim/model ratio: {ratio:.2f} (fill, diagonal chain and stragglers "
          "are outside Eq. 1)")


def main() -> None:
    # The paper's headline configurations:
    plan(300_000, 256)   # Figure 8's strong-scaling endpoint
    plan(1_664_511, 64)  # the 10 TB problem only offload can touch
    plan(196_608, 16)    # Figure 3's sweep size
    cross_check()


if __name__ == "__main__":
    main()
