"""Capacity planning through the scheduler's admission-control API
(§2.7, §3.4, §4.5, Eq. 5) - before burning node-hours.

The cluster scheduler prices every job *before* it touches the machine
(:mod:`repro.sched.admission`).  This example drives the same machinery
directly:

1. :func:`repro.sched.assess` prices a problem *shape* against a fleet
   shape - feasibility ladder (fits-HBM / needs-offload / infeasible),
   recommended variant and block size, Eq. 1 predicted makespan - with
   no graph allocated, so the paper's 300k-vertex / 10 TB
   configurations cost nothing to evaluate;
2. a live :class:`repro.sched.ClusterScheduler` shows the admission
   verdicts end to end: a job that fits runs, an oversubscribing job
   queues until capacity frees, an impossible one is REJECTED with
   :class:`~repro.errors.AdmissionError` (exit code 15);
3. a hollow simulated run cross-checks the Eq. 1 prediction.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.sched import ClusterScheduler, JobStatus, assess


def plan(n: float, n_nodes: int, ranks_per_node: int = 12) -> None:
    """Price one paper configuration with the admission controller's
    shape-level what-if."""
    a = assess(n, n_nodes, ranks_per_node)
    print(f"=== plan: n = {n:,.0f} vertices on {n_nodes} Summit nodes "
          f"({ranks_per_node} ranks/node) ===")
    print("assessment:", a.summary())
    print(f"distance matrix: {a.matrix_bytes / 1e12:.2f} TB; aggregate HBM "
          f"{a.hbm_total / 1e12:.2f} TB; aggregate DRAM {a.dram_total / 1e12:.2f} TB")
    if a.feasibility == "fits-hbm":
        print("fits in GPU memory: use Co-ParallelFw (variant='async')")
    elif a.feasibility == "needs-offload":
        print(f"beyond GPU memory -> Me-ParallelFw (variant='offload'); "
              f"Eq. 5 block-size floor applied: b = {a.block_size}")
    else:
        print("does not fit in host DRAM either: need more nodes")
    regime = "compute-bound" if a.compute_seconds > a.bandwidth_seconds else "bandwidth-bound"
    print(f"Eq. 1 terms: compute {a.compute_seconds:.2f}s, "
          f"bandwidth {a.bandwidth_seconds:.2f}s -> {regime}")
    print()
    return a


def admission_demo() -> None:
    """The same pricing, live: submit jobs against one shared fleet and
    watch the admit / queue / reject verdicts."""
    print("=== admission control: one shared 1-node fleet ===")
    sched = ClusterScheduler(n_nodes=1, dim_scale=9000.0)
    hollow = dict(variant="async", block_size=1, n_nodes=1, ranks_per_node=2,
                  dim_scale=9000.0, compute_numerics=False, collect=False,
                  check_negative_cycles=False)
    w = np.zeros((8, 8), dtype=np.float32)

    first = sched.submit(w, name="first", **hollow)
    second = sched.submit(w, name="second", **hollow)   # same footprint: must wait
    too_big = sched.submit(np.zeros((24, 24), dtype=np.float32),
                           name="too-big", **hollow)    # 3x the rows: never fits

    print(f"first:   {first.status.value}  (fits an idle fleet)")
    print(f"second:  {second.status.value}  ({second.report().reason})")
    print(f"too-big: {too_big.status.value}  ({too_big.report().reason})")
    assert first.status is JobStatus.RUNNING
    assert second.status is JobStatus.QUEUED
    assert too_big.status is JobStatus.REJECTED
    assert too_big.report().exit_code == 15  # AdmissionError's CLI code

    reports = sched.run()
    done = [r.name for r in reports if r.status == "done"]
    assert sorted(done) == ["first", "second"]
    assert second.report().queue_wait > 0.0
    print(f"after run: first/second done; second queued "
          f"{second.report().queue_wait:.1f}s for capacity; "
          f"fleet GPU utilization "
          f"{sched.fleet_metrics().flat()['fleet.gpu.utilization']:.1%}")
    print()


def cross_check() -> None:
    """Compare the Eq. 1 prediction with a simulated hollow run, both
    priced and executed through the scheduler."""
    print("=== cross-check: model vs simulator (hollow run) ===")
    nb, nodes, rpn, b = 64, 8, 8, 768.0
    n_virt = nb * b
    a = assess(n_virt, nodes, rpn)
    sched = ClusterScheduler(n_nodes=nodes, dim_scale=b)
    handle = sched.submit(
        np.zeros((nb, nb), dtype=np.float32), variant="async", block_size=1,
        n_nodes=nodes, ranks_per_node=rpn, dim_scale=b,
        compute_numerics=False, collect=False, check_negative_cycles=False,
    )
    sim = handle.result().report
    print(f"model:     {a.predicted_makespan:8.3f} s")
    print(f"simulator: {sim.elapsed:8.3f} s  "
          f"({sim.petaflops:.4f} PF/s, {sim.effective_bandwidth() / 1e9:.2f} GB/s/node)")
    ratio = sim.elapsed / a.predicted_makespan
    print(f"sim/model ratio: {ratio:.2f} (fill, diagonal chain and stragglers "
          "are outside Eq. 1)")
    assert 0.1 < ratio < 10.0, "model and simulator should agree within an order"


def main() -> None:
    # The paper's headline configurations:
    a = plan(300_000, 256)   # Figure 8's strong-scaling endpoint
    assert a.feasibility == "fits-hbm"
    b = plan(1_664_511, 64)  # the 10 TB problem only offload can touch
    assert b.feasibility == "needs-offload"
    c = plan(196_608, 16)
    assert c.feasible
    admission_demo()
    cross_check()


if __name__ == "__main__":
    main()
