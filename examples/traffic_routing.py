"""Traffic routing on a road network (the paper's second motivating
application class: "traffic routing and simulation").

Builds a city-like street grid with jittered travel times, one-way
asymmetry and diagonal shortcuts; computes the all-pairs travel-time
matrix on the simulated cluster; derives routing tables (next-hop per
destination); and simulates an incident (a blocked road segment) with
the incremental solver to show rerouting.

Run:  python examples/traffic_routing.py
"""

from __future__ import annotations

import repro
from repro.analysis import summarize
from repro.extensions import IncrementalApsp, next_hop_from_distances, reconstruct_path
from repro.graphs import grid_road_network


def intersection_name(v: int, cols: int) -> str:
    return f"({v // cols},{v % cols})"


def main() -> None:
    rows, cols = 8, 10
    n = rows * cols
    weights = grid_road_network(rows, cols, seed=11, diagonal_prob=0.2)
    print(f"street grid: {rows} x {cols} = {n} intersections\n")

    # --- All-pairs travel times on the simulated cluster, with
    # --- distributed path generation (next hops computed in-sweep) -------
    result = repro.solve(
        weights,
        variant="async",
        block_size=16,
        n_nodes=2,
        ranks_per_node=4,
        validate=True,
        track_paths=True,
    )
    travel = result.dist
    print(result.report.summary())

    # --- Routing tables: next hop toward every destination.  The
    # distributed sweep already produced them; the local recovery from
    # distances gives identical routes and serves as a cross-check. ----
    nxt = result.next_hops
    nxt_local = next_hop_from_distances(weights, travel)
    assert all(
        reconstruct_path(nxt, 0, d) is not None
        and reconstruct_path(nxt_local, 0, d) is not None
        for d in range(1, n)
    )
    src, dst = 0, n - 1  # opposite corners
    route = reconstruct_path(nxt, src, dst)
    print(f"\nroute {intersection_name(src, cols)} -> {intersection_name(dst, cols)}"
          f" ({travel[src, dst]:.2f} min):")
    print("  " + " -> ".join(intersection_name(v, cols) for v in route))

    # --- Network statistics (the analytics layer) --------------------------
    stats = summarize(travel)
    print(f"\nnetwork diameter: {stats.diameter:.2f} min  "
          f"radius: {stats.radius:.2f} min")
    print(f"mean travel time: {stats.average_distance:.2f} min")
    print("central intersections: "
          + ", ".join(intersection_name(v, cols) for v in stats.center))

    # --- Incident: a segment on the best route closes ---------------------
    inc = IncrementalApsp(weights, block_size=16)
    u, v = route[len(route) // 2], route[len(route) // 2 + 1]
    print(f"\nincident: closing segment {intersection_name(u, cols)} -> "
          f"{intersection_name(v, cols)}")
    inc.remove_edge(u, v)
    new_time = inc.distance(src, dst)
    nxt2 = next_hop_from_distances(inc.weights, inc.dist)
    detour = reconstruct_path(nxt2, src, dst)
    print(f"rerouted ({new_time:.2f} min, +{new_time - travel[src, dst]:.2f}):")
    print("  " + " -> ".join(intersection_name(w, cols) for w in detour))
    assert new_time >= travel[src, dst]
    assert (u, v) not in set(zip(detour, detour[1:]))


if __name__ == "__main__":
    main()
