"""Visualize the schedules that make the paper's optimizations work.

Two text Gantt charts straight from the simulator's tracer:

1. the ooGSrGemm offload pipeline (paper Figure 2): SrGemm / d2hXfer /
   hostUpdate overlapping across cudaStreams;
2. one rank's view of baseline vs pipelined distributed Floyd-Warshall:
   in the pipelined schedule the NIC transfers ride under the
   OuterUpdate kernels instead of alternating with them.

Run:  python examples/pipeline_timeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core import apsp, oog_srgemm_plan, run_oog_pipeline
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.semiring import INF
from repro.sim import Environment, Tracer, render_gantt


def show_offload_pipeline() -> None:
    print("=" * 72)
    print("1. ooGSrGemm pipeline on one GPU (paper Figure 2), 3 streams")
    print("=" * 72)
    env = Environment()
    tracer = Tracer()
    cost = CostModel(SUMMIT, dim_scale=768.0)
    cluster = SimCluster(env, SUMMIT, 1, cost, tracer)
    gpu, host = cluster.nodes[0].gpus[0], cluster.nodes[0].host
    a = np.zeros((16, 1), dtype=np.float32)
    b = np.zeros((1, 16), dtype=np.float32)
    c = np.full((16, 16), INF, dtype=np.float32)
    tiles = oog_srgemm_plan(a, b, c, 4, 4)
    stats = env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, 3)))
    print(render_gantt(
        tracer,
        width=100,
        actors=["node0.gpu0.h2d", "node0.gpu0.kernel", "node0.gpu0.d2h", "node0.host"],
        glyphs={"SrGemm": "S", "d2hXfer": "D", "h2dXfer": "H", "hostUpdate": "U"},
    ))
    print(f"\n{stats.tiles} tiles, {stats.flop_rate() / 1e9:.0f} GFLOP/s "
          f"(kernel sustained: {cost.srgemm_rate(768) / 1e9:.0f})")
    print(f"SrGemm||d2hXfer overlap: "
          f"{tracer.overlap_time('SrGemm', 'd2hXfer') / stats.elapsed * 100:.0f}% "
          "of the run\n")


def show_distributed_schedules() -> None:
    print("=" * 72)
    print("2. Baseline (Alg. 3) vs Pipelined (Alg. 4): does communication")
    print("   hide under the outer product?")
    print("=" * 72)
    w = np.zeros((24, 24), dtype=np.float32)
    for variant in ("baseline", "pipelined"):
        res = apsp(
            w,
            variant=variant,
            block_size=1,
            n_nodes=4,
            ranks_per_node=2,
            dim_scale=768.0,
            compute_numerics=False,
            collect_result=False,
            trace=True,
        )
        tr = res.tracer
        print(f"\n--- {variant}: one node's GPU vs its NIC ---")
        print(render_gantt(
            tr,
            width=100,
            actors=["node0.gpu0.kernel", "node0.nic"],
            glyphs={"SrGemm": "S", "nic_xfer": "N"},
        ))
        overlap = tr.overlap_time("SrGemm", "nic_xfer")
        print(f"total time {res.report.elapsed:.3f}s; "
              f"SrGemm||NIC overlap {overlap:.3f}s")


def main() -> None:
    show_offload_pipeline()
    show_distributed_schedules()


if __name__ == "__main__":
    main()
